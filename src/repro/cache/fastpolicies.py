"""Fast-path replay kernels for the learned-policy family.

:mod:`repro.cache.fastsim` dispatches into this module for the policies
whose victim choice depends on *learned* state — DRRIP's set-duelling
PSEL, SHiP/SHiP++'s signature outcome table, and the Hawkeye/Glider
OPTgen-trained predictors.  Each kernel keeps the same structure-of-
arrays layout as the stateless kernels (flat per-set tag/dirty/RRPV
lists, set/tag splitting and PC hashing vectorized up front with NumPy)
and adds exactly the per-line and global state its policy needs:

* ``drrip``   — RRPV lists + leader-set role array + one PSEL counter.
* ``ship``    — RRPV lists + per-line signature/outcome + the SHCT.
* ``hawkeye`` — RRPV/friendly lists + per-line predictor index + the
  3-bit counter table + a flat port of the sampled-set OPTgen.
* ``glider``  — Hawkeye's layout with the counter table replaced by the
  ISVM weight table, per-core PCHR kept as parallel (pc, hash) lists,
  and per-line insertion-context tuples for eviction detraining.

Parity is the contract: every kernel reproduces the reference engine's
event stream ``(hit, bypassed, way, evicted_tag, evicted_dirty)``
access-by-access, including training order (sampler events before the
hit/miss outcome, victim detraining before the same access's insertion
prediction, SHCT eviction-training before the insertion that reads it)
and RNG draw sequence (batched PCG64 draws are bit-identical to the
reference policies' sequential draws).  ``verify_parity`` and the
conformance fuzzer enforce this across the adversarial trace families.

Hash/context representation: the reference engine stores raw PCs and
hashes them at every prediction/training; the kernels hash each access's
PC once, up front, and store the *hashed* forms (predictor index, ISVM
entry index, 4-bit weight hash) per line and per sampler entry.  This is
behaviour-preserving because every reference consumer applies the same
pure hash to the same stored PC.
"""

from __future__ import annotations

import numpy as np

from ..obs import insight as obs_insight
from .config import CacheConfig
from .stats import CacheStats

__all__ = [
    "_decode_stream",
    "_finish_stats",
    "_replay_drrip",
    "_replay_ship",
    "_replay_hawkeye",
    "_replay_glider",
    "_DRRIPKernel",
    "_ShipKernel",
    "_HawkeyeKernel",
    "_GliderKernel",
]

_KIND_LOAD, _KIND_STORE, _KIND_WRITEBACK = 0, 1, 2


def _decode_stream(stream, config: CacheConfig):
    """Vectorized set/tag split of a whole stream into plain-int lists."""
    shift = (config.line_size - 1).bit_length()
    set_mask = config.num_sets - 1
    tag_shift = set_mask.bit_length()
    lines = stream.addresses.astype(np.uint64) >> np.uint64(shift)
    sets = (lines & np.uint64(set_mask)).astype(np.int64).tolist()
    tags = (lines >> np.uint64(tag_shift)).astype(np.int64).tolist()
    return sets, tags, stream.kinds.tolist(), stream.cores.tolist()


def _finish_stats(name, dh, dm, wh, wm, ev, dev, pch, pcm) -> CacheStats:
    stats = CacheStats(name=name)
    stats.demand_hits = dh
    stats.demand_misses = dm
    stats.writeback_hits = wh
    stats.writeback_misses = wm
    stats.evictions = ev
    stats.dirty_evictions = dev
    stats.per_core_hits = pch
    stats.per_core_misses = pcm
    return stats


# -- vectorized PC hashing ----------------------------------------------------
# Whole-stream ports of pc_signature / HawkeyePredictor._index / hash_pc;
# uint64 arithmetic wraps exactly like the reference's `& 0xFFFF...F`.


def _ship_signatures(pcs: np.ndarray, bits: int) -> list[int]:
    x = pcs.astype(np.uint64)
    x = x ^ (x >> np.uint64(17))
    x = x * np.uint64(0xED5AD4BB)
    x = x ^ (x >> np.uint64(11))
    return (x & np.uint64((1 << bits) - 1)).astype(np.int64).tolist()


def _hawkeye_indices(pcs: np.ndarray, table_bits: int) -> list[int]:
    x = pcs.astype(np.uint64)
    x = x ^ (x >> np.uint64(15))
    x = x * np.uint64(0x2545F4914F6CDD1D)
    return (x & np.uint64((1 << table_bits) - 1)).astype(np.int64).tolist()


def _weight_hashes(pcs: np.ndarray, bits: int) -> list[int]:
    x = pcs.astype(np.uint64)
    x = x ^ (x >> np.uint64(16))
    x = x * np.uint64(0x45D9F3B)
    x = x ^ (x >> np.uint64(16))
    return (x & np.uint64((1 << bits) - 1)).astype(np.int64).tolist()


def _line_numbers(stream) -> list[int]:
    # The reference samplers compute `request.address >> 6` regardless of
    # the configured line size (Hawkeye/Glider hard-code a 64B line);
    # mirror that exactly rather than reusing the decode shift.
    return (stream.addresses.astype(np.uint64) >> np.uint64(6)).tolist()


def _sampled_flags(stream, sampler: "_FlatOptGenSampler") -> list[bool]:
    """Per-access "lands in a sampled set" flags, vectorized up front."""
    flags = np.zeros(sampler.num_sets, dtype=bool)
    flags[np.fromiter(sampler.sampled, dtype=np.int64)] = True
    lines = stream.addresses.astype(np.uint64) >> np.uint64(6)
    return flags[(lines % np.uint64(sampler.num_sets)).astype(np.int64)].tolist()


def _insight_recorder(config: CacheConfig):
    """The active decision recorder iff it matches ``config``'s geometry.

    Resolved once per :meth:`feed` call, never per access — the
    disabled path costs the kernels exactly this one check.
    """
    rec = obs_insight.get_recorder()
    if rec is not None and not rec.matches(config.num_sets, config.associativity):
        rec = None
    return rec


# -- flat sampled-set OPTgen --------------------------------------------------


class _FlatOptGenSampler:
    """Flat-state port of ``OptGenSampler`` + ``SetOptGen``.

    Same decisions, same training-event order, no per-event dataclasses:
    events are ``(token, context, label)`` tuples where ``token`` is
    whatever pre-hashed PC form the caller stores (predictor index for
    Hawkeye, ISVM entry index for Glider).

    The reference sampler rescans every tracked entry per access (a
    staleness listcomp plus a full sort on tracker overflow).  Because
    the sweep runs on *every* access and ``base_time`` advances by at
    most one step per access, at most one entry can newly age out of the
    window per access, and the tracker can exceed its capacity by at
    most one entry.  Both sweeps therefore reduce to amortized-O(1)
    lookups in a per-set ``stamp -> line`` index (stamps are unique
    within a set — one access, one stamp — so sort order is total and
    tie-stability cannot diverge from the reference):

    * window staleness: pop the index at each stamp the window trim just
      aged out; a mapping is live iff the tracked entry still carries
      that stamp (re-accesses leave dead mappings behind, skipped here).
    * tracker overflow: the reference takes the ``len - tracker_ways``
      (= at most 1) oldest entries, *skipping* any already stale or the
      just-accessed line without replacement.  A stale entry, having the
      oldest stamp, is always that candidate when one exists — so
      overflow eviction only ever happens on accesses with no window
      staleness, and the victim is the live entry with the smallest
      stamp >= base, found by advancing a per-set cursor.
    """

    __slots__ = (
        "num_sets",
        "capacity",
        "window",
        "tracker_ways",
        "sampled",
        "_state",
    )

    # Per-set state record layout (one list per sampled set; a single
    # dict lookup fetches everything the hot path touches).  LAST_FULL
    # is the absolute stamp of the newest occupancy slot ever to reach
    # capacity: slots never drain inside the window, so the interval
    # [prev, now) contains a full slot iff LAST_FULL >= prev — an O(1)
    # replacement for the reference's O(window) interval scan (stale
    # full slots sit below base <= prev and can't false-positive).
    (
        _OCC,
        _BASE,
        _TIME,
        _LAST,
        _TRACKED,
        _BY_STAMP,
        _SWEPT,
        _CURSOR,
        _LAST_FULL,
    ) = range(9)

    def __init__(
        self,
        num_sets: int,
        associativity: int,
        num_sampled_sets: int,
        window_factor: int,
        tracker_ways: int | None = None,
    ) -> None:
        num_sampled = min(num_sampled_sets, num_sets)
        stride = max(1, num_sets // num_sampled)
        self.sampled = frozenset(i * stride for i in range(num_sampled))
        self.num_sets = num_sets
        self.capacity = associativity
        self.window = window_factor * associativity
        self.tracker_ways = tracker_ways if tracker_ways is not None else self.window
        self._state = {s: [[], 0, 0, {}, {}, {}, 0, 0, -1] for s in self.sampled}

    # A frozenset pickles in iteration order, which is not stable across
    # a pickle round trip — serialize sorted so the checkpoint digest of
    # a resumed kernel matches an uninterrupted run's bit-for-bit.
    def __getstate__(self) -> dict:
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["sampled"] = sorted(state["sampled"])
        return state

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, frozenset(value) if slot == "sampled" else value)

    def access(self, line: int, token, context) -> list:
        """One sampled demand access; returns ``(token, context, label)``
        training events in the reference sampler's order (reuse verdict
        first, then window-stale and tracker-overflow detrains)."""
        state = self._state[line % self.num_sets]
        occ = state[0]
        base = state[1]
        now = state[2]
        last = state[3]
        tracked = state[4]
        prev = last.get(line)
        first = prev is None or prev < base
        hit = False
        if not first and state[8] < prev:
            hit = True
            cap = self.capacity
            newly_full = -1
            for i in range(prev - base, now - base):
                v = occ[i] + 1
                occ[i] = v
                if v == cap:
                    newly_full = i
            if newly_full >= 0:
                state[8] = base + newly_full
        events = []
        info = tracked.get(line)
        if info is not None:
            # Reuse of a tracked line: label with MIN's verdict; a reuse
            # whose previous access aged out of the window is
            # conservatively a miss.
            events.append((info[0], info[1], hit if not first else False))
        last[line] = now
        occ.append(0)
        now += 1
        state[2] = now
        window = self.window
        excess = len(occ) - window
        if excess > 0:
            del occ[:excess]
            base += excess
            state[1] = base
        if len(last) > 4 * window:
            state[3] = {l: t for l, t in last.items() if t >= base}
        tracked[line] = (token, context, now)
        by_stamp = state[5]
        by_stamp[now] = line
        # Window-staleness sweep over the stamps that just left the window.
        stale = None
        swept = state[6]
        if swept < base:
            while swept < base:
                old = by_stamp.pop(swept, None)
                if old is not None:
                    info = tracked.get(old)
                    if info is not None and info[2] == swept:
                        if stale is None:
                            stale = [old]
                        else:
                            stale.append(old)
                swept += 1
            state[6] = swept
        k_over = len(tracked) - self.tracker_ways
        if k_over > 0:
            # The reference's overflow candidates are the k oldest-stamp
            # entries; stale ones among them (always the oldest) are
            # skipped without replacement, as is the current line (the
            # newest stamp, so the cursor never reaches it).
            if stale is not None:
                k_over -= len(stale)
            cursor = state[7]
            if cursor < base:
                cursor = base
            while k_over > 0 and cursor < now:
                old = by_stamp.get(cursor)
                if old is not None:
                    info = tracked.get(old)
                    if info is not None and info[2] == cursor:
                        if stale is None:
                            stale = [old]
                        else:
                            stale.append(old)
                        k_over -= 1
                    del by_stamp[cursor]
                cursor += 1
            state[7] = cursor
        if stale is not None:
            for old in stale:
                info = tracked.pop(old)
                events.append((info[0], info[1], False))
        return events


# -- DRRIP --------------------------------------------------------------------


class _DRRIPKernel:
    """DRRIP fast kernel: RRIP substrate + leader-set duelling PSEL.

    All cross-access state lives in attributes, so the kernel can be
    fed a stream in bounded-memory chunks (:meth:`feed` any number of
    times, then :meth:`finish`) and pickled between chunks for the
    checkpointed streaming replay — a single ``feed`` of the whole
    stream is bit-identical to the historical one-shot kernel.
    """

    def __init__(
        self,
        config: CacheConfig,
        max_rrpv: int,
        num_leader_sets: int,
        psel_max: int,
        long_prob: float,
        seed: int,
    ) -> None:
        num_sets, assoc = config.num_sets, config.associativity
        self.config = config
        self.max_rrpv = max_rrpv
        self.psel_max = psel_max
        self.long_prob = long_prob
        # Leader-set roles, matching DRRIPPolicy.attach: 1 = SRRIP leader,
        # 2 = BRRIP leader (SRRIP wins overlaps), 0 = follower.
        role = [0] * num_sets
        leaders = min(num_leader_sets, max(1, num_sets // 2))
        stride = max(1, num_sets // (2 * leaders))
        for i in range(leaders):
            role[(2 * i) * stride % num_sets] = 1
        for i in range(leaders):
            s = ((2 * i + 1) * stride) % num_sets
            if role[s] == 0:
                role[s] = 2
        self.role = role
        self.psel = psel_max // 2
        self.tag_t = [[-1] * assoc for _ in range(num_sets)]
        self.dirty_t = [[False] * assoc for _ in range(num_sets)]
        self.rrpv_t = [[0] * assoc for _ in range(num_sets)]
        self.fill_count = [0] * num_sets
        self.rng = np.random.default_rng(seed)
        self.draw_buf: list[float] = []
        self.draw_pos = 0
        self.dh = self.dm = self.wh = self.wm = self.ev = self.dev = 0
        self.pch: dict[int, int] = {}
        self.pcm: dict[int, int] = {}

    def feed(self, stream, record=None) -> None:
        _drrip_feed(self, stream, record)
        rec = _insight_recorder(self.config)
        if rec is not None:
            rec.record_model_state(
                "drrip",
                psel=self.psel,
                psel_fraction=self.psel / max(1, self.psel_max),
            )

    def finish(self) -> CacheStats:
        return _finish_stats(
            self.config.name,
            self.dh, self.dm, self.wh, self.wm, self.ev, self.dev,
            self.pch, self.pcm,
        )


def _drrip_feed(kernel, stream, record) -> None:
    # Loop body is verbatim from the original one-shot kernel; only the
    # locals-load prologue / store-back epilogue differ (attrs <-> locals
    # so the hot loop keeps LOAD_FAST access).
    sets, tags, kinds, cores = _decode_stream(stream, kernel.config)
    config = kernel.config
    num_sets, assoc = config.num_sets, config.associativity
    max_rrpv = kernel.max_rrpv
    psel_max = kernel.psel_max
    long_prob = kernel.long_prob
    role = kernel.role
    psel = kernel.psel
    half = psel_max // 2
    tag_t = kernel.tag_t
    dirty_t = kernel.dirty_t
    rrpv_t = kernel.rrpv_t
    fill_count = kernel.fill_count
    rng = kernel.rng
    draw_buf = kernel.draw_buf
    draw_pos = kernel.draw_pos
    long_rrpv = max_rrpv - 1
    dh, dm, wh, wm, ev, dev = (
        kernel.dh, kernel.dm, kernel.wh, kernel.wm, kernel.ev, kernel.dev
    )
    pch = kernel.pch
    pcm = kernel.pcm
    for i in range(len(sets)):
        s = sets[i]
        t = tags[i]
        k = kinds[i]
        row = tag_t[s]
        if t in row:
            w = row.index(t)
            rrpv_t[s][w] = 0
            if k != _KIND_LOAD:
                dirty_t[s][w] = True
            if k != _KIND_WRITEBACK:
                dh += 1
                c = cores[i]
                pch[c] = pch.get(c, 0) + 1
            else:
                wh += 1
            if record is not None:
                record.append((1, 0, w, -1, 0))
            continue
        if k != _KIND_WRITEBACK:
            dm += 1
            c = cores[i]
            pcm[c] = pcm.get(c, 0) + 1
        else:
            wm += 1
        ev_tag, ev_dirty = -1, False
        if fill_count[s] < assoc:
            w = row.index(-1)
            fill_count[s] += 1
        else:
            rr = rrpv_t[s]
            while True:
                for w in range(assoc):
                    if rr[w] >= max_rrpv:
                        break
                else:
                    for j in range(assoc):
                        rr[j] += 1
                    continue
                break
            ev_tag, ev_dirty = row[w], dirty_t[s][w]
            ev += 1
            if ev_dirty:
                dev += 1
        row[w] = t
        dirty_t[s][w] = k != _KIND_LOAD
        # insertion_rrpv: a fill means this set missed — update PSEL if a
        # leader, then pick the component policy (and only BRRIP draws).
        r = role[s]
        if r == 1:
            if psel > 0:
                psel -= 1
        elif r == 2:
            if psel < psel_max:
                psel += 1
        if r == 2 or (r == 0 and psel < half):
            if draw_pos == len(draw_buf):
                draw_buf = rng.random(size=4096).tolist()
                draw_pos = 0
            rrpv_t[s][w] = long_rrpv if draw_buf[draw_pos] < long_prob else max_rrpv
            draw_pos += 1
        else:
            rrpv_t[s][w] = long_rrpv
        if record is not None:
            record.append((0, 0, w, ev_tag, int(ev_dirty)))
    kernel.psel = psel
    kernel.draw_buf = draw_buf
    kernel.draw_pos = draw_pos
    kernel.dh, kernel.dm, kernel.wh, kernel.wm, kernel.ev, kernel.dev = (
        dh, dm, wh, wm, ev, dev
    )


def _replay_drrip(
    stream,
    config: CacheConfig,
    max_rrpv: int,
    num_leader_sets: int,
    psel_max: int,
    long_prob: float,
    seed: int,
    record,
) -> CacheStats:
    kernel = _DRRIPKernel(
        config, max_rrpv, num_leader_sets, psel_max, long_prob, seed
    )
    kernel.feed(stream, record)
    return kernel.finish()


# -- SHiP / SHiP++ ------------------------------------------------------------


class _ShipKernel:
    """SHiP (``plus=False``) / SHiP++ fast kernel.

    Per-line signature is -1 outside sampled sets (the reference stores
    none), so training naturally no-ops there.  Eviction training runs
    before the same access's insertion reads the SHCT, as on the
    reference path (victim -> on_evict -> on_fill).

    Chunk-feedable: all cross-access state is attributes, the per-chunk
    signatures are recomputed in :func:`_ship_feed` from the chunk's
    pcs, so feeding in pieces is bit-identical to one shot.
    """

    def __init__(
        self,
        config: CacheConfig,
        plus: bool,
        max_rrpv: int,
        signature_bits: int,
        counter_max: int,
        num_sampled_sets: int,
    ) -> None:
        num_sets, assoc = config.num_sets, config.associativity
        self.config = config
        self.plus = plus
        self.max_rrpv = max_rrpv
        self.signature_bits = signature_bits
        self.counter_max = counter_max
        sampled = [False] * num_sets
        n_sampled = min(num_sampled_sets, num_sets)
        stride = max(1, num_sets // n_sampled)
        for i in range(n_sampled):
            sampled[i * stride] = True
        self.sampled = sampled
        self.shct = [counter_max // 2] * (1 << signature_bits)
        self.tag_t = [[-1] * assoc for _ in range(num_sets)]
        self.dirty_t = [[False] * assoc for _ in range(num_sets)]
        self.rrpv_t = [[0] * assoc for _ in range(num_sets)]
        self.sig_t = [[-1] * assoc for _ in range(num_sets)]
        self.out_t = [[False] * assoc for _ in range(num_sets)]
        self.fill_count = [0] * num_sets
        self.dh = self.dm = self.wh = self.wm = self.ev = self.dev = 0
        self.pch: dict[int, int] = {}
        self.pcm: dict[int, int] = {}

    def feed(self, stream, record=None) -> None:
        _ship_feed(self, stream, record)
        rec = _insight_recorder(self.config)
        if rec is not None:
            shct = self.shct
            cmax = self.counter_max
            rec.record_model_state(
                "ship++" if self.plus else "ship",
                shct_mean=sum(shct) / len(shct),
                shct_saturated_fraction=(
                    sum(1 for c in shct if c == 0 or c == cmax) / len(shct)
                ),
            )

    def finish(self) -> CacheStats:
        return _finish_stats(
            self.config.name,
            self.dh, self.dm, self.wh, self.wm, self.ev, self.dev,
            self.pch, self.pcm,
        )


def _ship_feed(kernel, stream, record) -> None:
    sets, tags, kinds, cores = _decode_stream(stream, kernel.config)
    config = kernel.config
    num_sets, assoc = config.num_sets, config.associativity
    plus = kernel.plus
    max_rrpv = kernel.max_rrpv
    counter_max = kernel.counter_max
    sigs = _ship_signatures(stream.pcs, kernel.signature_bits)
    sampled = kernel.sampled
    shct = kernel.shct
    tag_t = kernel.tag_t
    dirty_t = kernel.dirty_t
    rrpv_t = kernel.rrpv_t
    sig_t = kernel.sig_t
    out_t = kernel.out_t
    fill_count = kernel.fill_count
    long_rrpv = max_rrpv - 1
    dh, dm, wh, wm, ev, dev = (
        kernel.dh, kernel.dm, kernel.wh, kernel.wm, kernel.ev, kernel.dev
    )
    pch = kernel.pch
    pcm = kernel.pcm
    for i in range(len(sets)):
        s = sets[i]
        t = tags[i]
        k = kinds[i]
        row = tag_t[s]
        if t in row:
            w = row.index(t)
            if k != _KIND_LOAD:
                dirty_t[s][w] = True
            if not (plus and k == _KIND_WRITEBACK):
                # SHiP++ writeback hits neither promote nor train.
                rrpv_t[s][w] = 0
                sg = sig_t[s][w]
                if sg >= 0 and not out_t[s][w]:
                    out_t[s][w] = True
                    if shct[sg] < counter_max:
                        shct[sg] += 1
            if k != _KIND_WRITEBACK:
                dh += 1
                c = cores[i]
                pch[c] = pch.get(c, 0) + 1
            else:
                wh += 1
            if record is not None:
                record.append((1, 0, w, -1, 0))
            continue
        if k != _KIND_WRITEBACK:
            dm += 1
            c = cores[i]
            pcm[c] = pcm.get(c, 0) + 1
        else:
            wm += 1
        ev_tag, ev_dirty = -1, False
        if fill_count[s] < assoc:
            w = row.index(-1)
            fill_count[s] += 1
        else:
            rr = rrpv_t[s]
            while True:
                for w in range(assoc):
                    if rr[w] >= max_rrpv:
                        break
                else:
                    for j in range(assoc):
                        rr[j] += 1
                    continue
                break
            # on_evict: a sampled line evicted without reuse detrains.
            sg = sig_t[s][w]
            if sg >= 0 and not out_t[s][w] and shct[sg] > 0:
                shct[sg] -= 1
            ev_tag, ev_dirty = row[w], dirty_t[s][w]
            ev += 1
            if ev_dirty:
                dev += 1
        row[w] = t
        dirty_t[s][w] = k != _KIND_LOAD
        # on_fill: insertion RRPV from the (possibly just-detrained) SHCT.
        if plus:
            if k == _KIND_WRITEBACK:
                rrpv_t[s][w] = max_rrpv
            else:
                c = shct[sigs[i]]
                if c == 0:
                    rrpv_t[s][w] = max_rrpv
                elif c == counter_max:
                    rrpv_t[s][w] = 0
                else:
                    rrpv_t[s][w] = long_rrpv
            track = sampled[s] and k != _KIND_WRITEBACK
        else:
            rrpv_t[s][w] = max_rrpv if shct[sigs[i]] == 0 else long_rrpv
            track = sampled[s]
        if track:
            sig_t[s][w] = sigs[i]
            out_t[s][w] = False
        else:
            sig_t[s][w] = -1
            out_t[s][w] = False
        if record is not None:
            record.append((0, 0, w, ev_tag, int(ev_dirty)))
    kernel.dh, kernel.dm, kernel.wh, kernel.wm, kernel.ev, kernel.dev = (
        dh, dm, wh, wm, ev, dev
    )


def _replay_ship(
    stream,
    config: CacheConfig,
    plus: bool,
    max_rrpv: int,
    signature_bits: int,
    counter_max: int,
    num_sampled_sets: int,
    record,
) -> CacheStats:
    kernel = _ShipKernel(
        config, plus, max_rrpv, signature_bits, counter_max, num_sampled_sets
    )
    kernel.feed(stream, record)
    return kernel.finish()


# -- Hawkeye ------------------------------------------------------------------

_HAWKEYE_MAX_RRPV = 7
_AGE_CAP = _HAWKEYE_MAX_RRPV - 1


class _HawkeyeKernel:
    """Hawkeye fast kernel: sampled-set OPTgen training a counter table.

    Per-line state: RRPV, friendly bit, and the *predictor index* of the
    last touching PC (stands in for ``line.pc`` — the reference only
    ever hashes it).  Training order per demand access: sampler events,
    then hit promotion or victim detrain followed by fill insertion
    (the detrain lands before the same access's insertion prediction).

    Chunk-feedable: the OPTgen sampler and counter table carry across
    :func:`_hawkeye_feed` calls; per-chunk vectors (predictor indices,
    line numbers, sampled flags) are recomputed from each chunk.
    """

    def __init__(
        self,
        config: CacheConfig,
        table_bits: int,
        counter_max: int,
        num_sampled_sets: int,
        window_factor: int,
    ) -> None:
        num_sets, assoc = config.num_sets, config.associativity
        self.config = config
        self.table_bits = table_bits
        self.counter_max = counter_max
        mid = (counter_max + 1) // 2
        self.table = [mid] * (1 << table_bits)
        self.sampler = _FlatOptGenSampler(
            num_sets, assoc, num_sampled_sets, window_factor
        )
        self.tag_t = [[-1] * assoc for _ in range(num_sets)]
        self.dirty_t = [[False] * assoc for _ in range(num_sets)]
        self.rrpv_t = [[0] * assoc for _ in range(num_sets)]
        self.fr_t = [[False] * assoc for _ in range(num_sets)]
        self.pi_t = [[0] * assoc for _ in range(num_sets)]
        self.fill_count = [0] * num_sets
        self.dh = self.dm = self.wh = self.wm = self.ev = self.dev = 0
        self.pch: dict[int, int] = {}
        self.pcm: dict[int, int] = {}

    def feed(self, stream, record=None) -> None:
        _hawkeye_feed(self, stream, record)
        rec = _insight_recorder(self.config)
        if rec is not None:
            table = self.table
            cmax = self.counter_max
            rec.record_model_state(
                "hawkeye",
                counter_mean=sum(table) / len(table),
                counter_saturated_fraction=(
                    sum(1 for c in table if c == 0 or c == cmax) / len(table)
                ),
            )

    def finish(self) -> CacheStats:
        return _finish_stats(
            self.config.name,
            self.dh, self.dm, self.wh, self.wm, self.ev, self.dev,
            self.pch, self.pcm,
        )


def _hawkeye_feed(kernel, stream, record) -> None:
    sets, tags, kinds, cores = _decode_stream(stream, kernel.config)
    config = kernel.config
    num_sets, assoc = config.num_sets, config.associativity
    counter_max = kernel.counter_max
    pidx = _hawkeye_indices(stream.pcs, kernel.table_bits)
    lines = _line_numbers(stream)
    mid = (counter_max + 1) // 2
    table = kernel.table
    sampler = kernel.sampler
    samp_acc = _sampled_flags(stream, sampler)
    sampler_access = sampler.access
    # Insight hooks: resolved once per feed; when no recorder is
    # installed the loop pays one `is not None` test per sampled access
    # and per eviction, nothing more.
    rec = _insight_recorder(config)
    if rec is not None:
        rec_access = rec.on_demand_access
        rec_evict = rec.on_eviction
        rec_pcs = stream.pcs.tolist()
        rec_tag_shift = (num_sets - 1).bit_length()
    else:
        rec_access = rec_evict = None
    tag_t = kernel.tag_t
    dirty_t = kernel.dirty_t
    rrpv_t = kernel.rrpv_t
    fr_t = kernel.fr_t
    pi_t = kernel.pi_t
    fill_count = kernel.fill_count
    dh, dm, wh, wm, ev, dev = (
        kernel.dh, kernel.dm, kernel.wh, kernel.wm, kernel.ev, kernel.dev
    )
    pch = kernel.pch
    pcm = kernel.pcm
    for i in range(len(sets)):
        s = sets[i]
        t = tags[i]
        k = kinds[i]
        if k != _KIND_WRITEBACK and samp_acc[i]:
            if rec_access is not None:
                # The live prediction, read before this access's sampler
                # events train the table — the same point in training
                # order where the reference policy snapshots its context.
                cnt = table[pidx[i]]
                rec_access(lines[i], rec_pcs[i], cnt >= mid, counter=cnt)
            for tok, _ctx, label in sampler_access(lines[i], pidx[i], None):
                c = table[tok]
                if label:
                    if c < counter_max:
                        table[tok] = c + 1
                elif c > 0:
                    table[tok] = c - 1
        row = tag_t[s]
        if t in row:
            w = row.index(t)
            if k != _KIND_LOAD:
                dirty_t[s][w] = True
            if k != _KIND_WRITEBACK:
                fr = table[pidx[i]] >= mid
                fr_t[s][w] = fr
                rrpv_t[s][w] = 0 if fr else _HAWKEYE_MAX_RRPV
                pi_t[s][w] = pidx[i]
                dh += 1
                c = cores[i]
                pch[c] = pch.get(c, 0) + 1
            else:
                wh += 1
            if record is not None:
                record.append((1, 0, w, -1, 0))
            continue
        if k != _KIND_WRITEBACK:
            dm += 1
            c = cores[i]
            pcm[c] = pcm.get(c, 0) + 1
        else:
            wm += 1
        ev_tag, ev_dirty = -1, False
        if fill_count[s] < assoc:
            w = row.index(-1)
            fill_count[s] += 1
        else:
            rr = rrpv_t[s]
            w = -1
            for j in range(assoc):
                if rr[j] >= _HAWKEYE_MAX_RRPV:
                    w = j
                    break
            if w < 0:
                # No averse line: evict the highest-RRPV (first tie wins)
                # and detrain its last toucher before this access's
                # insertion prediction reads the table.
                w = 0
                best = rr[0]
                for j in range(1, assoc):
                    if rr[j] > best:
                        best = rr[j]
                        w = j
                tok = pi_t[s][w]
                if table[tok] > 0:
                    table[tok] = table[tok] - 1
            ev_tag, ev_dirty = row[w], dirty_t[s][w]
            ev += 1
            if ev_dirty:
                dev += 1
            if rec_evict is not None:
                rec_evict(
                    (ev_tag << rec_tag_shift) | s,
                    predicted_friendly=fr_t[s][w],
                    rrpv=rrpv_t[s][w],
                )
        row[w] = t
        dirty_t[s][w] = k != _KIND_LOAD
        pi_t[s][w] = pidx[i]
        if k == _KIND_WRITEBACK:
            fr_t[s][w] = False
            rrpv_t[s][w] = _HAWKEYE_MAX_RRPV
        else:
            fr = table[pidx[i]] >= mid
            fr_t[s][w] = fr
            if fr:
                rrpv_t[s][w] = 0
                rr = rrpv_t[s]
                frr = fr_t[s]
                for j in range(assoc):
                    if j != w and row[j] != -1 and frr[j]:
                        v = rr[j] + 1
                        rr[j] = v if v < _HAWKEYE_MAX_RRPV else _AGE_CAP
            else:
                rrpv_t[s][w] = _HAWKEYE_MAX_RRPV
        if record is not None:
            record.append((0, 0, w, ev_tag, int(ev_dirty)))
    kernel.dh, kernel.dm, kernel.wh, kernel.wm, kernel.ev, kernel.dev = (
        dh, dm, wh, wm, ev, dev
    )


def _replay_hawkeye(
    stream,
    config: CacheConfig,
    table_bits: int,
    counter_max: int,
    num_sampled_sets: int,
    window_factor: int,
    record,
) -> CacheStats:
    kernel = _HawkeyeKernel(
        config, table_bits, counter_max, num_sampled_sets, window_factor
    )
    kernel.feed(stream, record)
    return kernel.finish()


# -- Glider -------------------------------------------------------------------


class _GliderKernel:
    """Glider fast kernel: ISVM over the PCHR on Hawkeye's machinery.

    Per-core PCHRs are parallel (raw-pc, 4-bit-hash) lists; the context
    stored with sampled accesses and (for detraining) with filled lines
    is the tuple of weight hashes — the only form the ISVM ever reads.
    The training gate, weight clamps and (optional) adaptive-threshold
    sweep mirror ``ISVMTable.train`` exactly.

    Chunk-feedable: ISVM weights, adaptive-threshold window, OPTgen
    sampler, PCHRs and per-line tables all carry across
    :func:`_glider_feed` calls (the PCHR/history registers are re-read
    from ``pchr`` at each feed, so chunk boundaries are invisible to
    the training sequence).
    """

    def __init__(
        self,
        config: CacheConfig,
        k: int,
        table_bits: int,
        weight_hash_bits: int,
        threshold: int,
        adaptive: bool,
        adapt_interval: int,
        num_sampled_sets: int,
        window_factor: int,
        tracker_ways,
        detrain: bool,
        confidence_insertion: bool,
    ) -> None:
        from ..core.isvm import HIGH_CONFIDENCE_SUM

        num_sets, assoc = config.num_sets, config.associativity
        self.config = config
        self.k = k
        self.table_bits = table_bits
        self.weight_hash_bits = weight_hash_bits
        self.adaptive = adaptive
        self.adapt_interval = adapt_interval
        self.detrain = detrain
        self.confidence_insertion = confidence_insertion
        self.weights = [
            [0] * (1 << weight_hash_bits) for _ in range(1 << table_bits)
        ]
        self.threshold = threshold
        self.hc_cut = min(HIGH_CONFIDENCE_SUM, max(1, threshold))
        self.win_correct = self.win_total = 0
        self.cand_scores: dict[int, float] = {}
        self.sampler = _FlatOptGenSampler(
            num_sets, assoc, num_sampled_sets, window_factor, tracker_ways
        )
        self.pchr: dict[int, list] = {}
        self.tag_t = [[-1] * assoc for _ in range(num_sets)]
        self.dirty_t = [[False] * assoc for _ in range(num_sets)]
        self.rrpv_t = [[0] * assoc for _ in range(num_sets)]
        self.fr_t = [[False] * assoc for _ in range(num_sets)]
        self.ei_t = [[0] * assoc for _ in range(num_sets)]
        self.ctx_t = [[None] * assoc for _ in range(num_sets)]
        self.fill_count = [0] * num_sets
        self.dh = self.dm = self.wh = self.wm = self.ev = self.dev = 0
        self.pch: dict[int, int] = {}
        self.pcm: dict[int, int] = {}

    def feed(self, stream, record=None) -> None:
        _glider_feed(self, stream, record)
        rec = _insight_recorder(self.config)
        if rec is not None:
            from ..core.isvm import ISVM

            norm = 0
            saturated = 0
            active = 0
            for entry in self.weights:
                for v in entry:
                    if v:
                        active += 1
                        norm += v if v > 0 else -v
                        if v <= ISVM.WEIGHT_MIN or v >= ISVM.WEIGHT_MAX:
                            saturated += 1
            rec.record_model_state(
                "glider",
                isvm_weight_norm=norm,
                isvm_saturated_weights=saturated,
                isvm_active_weights=active,
                threshold=self.threshold,
            )

    def finish(self) -> CacheStats:
        return _finish_stats(
            self.config.name,
            self.dh, self.dm, self.wh, self.wm, self.ev, self.dev,
            self.pch, self.pcm,
        )


def _glider_feed(kernel, stream, record) -> None:
    from ..core.isvm import (
        AVERSE_SUM,
        HIGH_CONFIDENCE_SUM,
        ISVM,
        THRESHOLD_CANDIDATES,
    )

    config = kernel.config
    sets, tags, kinds, cores = _decode_stream(stream, config)
    num_sets, assoc = config.num_sets, config.associativity
    k = kernel.k
    table_bits = kernel.table_bits
    adaptive = kernel.adaptive
    adapt_interval = kernel.adapt_interval
    detrain = kernel.detrain
    confidence_insertion = kernel.confidence_insertion
    pcs = stream.pcs.tolist()
    eidx = ((stream.pcs.astype(np.uint64) >> np.uint64(2))
            & np.uint64((1 << table_bits) - 1)).astype(np.int64).tolist()
    whash = _weight_hashes(stream.pcs, kernel.weight_hash_bits)
    lines = _line_numbers(stream)
    weights = kernel.weights
    wmin, wmax = ISVM.WEIGHT_MIN, ISVM.WEIGHT_MAX
    # The adaptive-threshold window lives in feed-locals (train() binds
    # them via nonlocal for speed) and is persisted back to the kernel
    # after the loop so chunked feeding matches one-shot exactly.
    threshold = kernel.threshold
    hc_cut = kernel.hc_cut
    win_correct = kernel.win_correct
    win_total = kernel.win_total
    cand_scores = kernel.cand_scores
    max_rrpv = _HAWKEYE_MAX_RRPV

    def train(entry: int, hist: tuple, label: bool) -> None:
        nonlocal win_correct, win_total, threshold, hc_cut
        e = weights[entry]
        tot = 0
        for h in hist:
            tot += e[h]
        if adaptive:
            win_total += 1
            if (tot >= AVERSE_SUM) == label:
                win_correct += 1
        # Perceptron gate: skip when already confidently past the margin.
        if label:
            if tot <= threshold:
                for h in hist:
                    v = e[h] + 1
                    e[h] = v if v <= wmax else wmax
        elif tot >= -threshold:
            for h in hist:
                v = e[h] - 1
                e[h] = v if v >= wmin else wmin
        if adaptive and win_total >= adapt_interval:
            accuracy = win_correct / max(1, win_total)
            win_correct = win_total = 0
            if threshold not in cand_scores:
                cand_scores[threshold] = accuracy
            unexplored = [c for c in THRESHOLD_CANDIDATES if c not in cand_scores]
            if unexplored:
                threshold = unexplored[0]
            else:
                threshold = max(cand_scores, key=lambda c: cand_scores[c])
            hc_cut = min(HIGH_CONFIDENCE_SUM, max(1, threshold))

    sampler = kernel.sampler
    samp_acc = _sampled_flags(stream, sampler)
    # Insight hooks: one `is not None` test per sampled access and per
    # eviction when disabled.
    rec = _insight_recorder(config)
    if rec is not None:
        rec_access = rec.on_demand_access
        rec_evict = rec.on_eviction
        rec_tag_shift = (num_sets - 1).bit_length()
    else:
        rec_access = rec_evict = None
    # The sampler body is inlined in the loop below (Glider trains on
    # every sampled access; the call/event-list overhead is measurable),
    # operating directly on the shared per-set state records.
    sstate = sampler._state
    snum = sampler.num_sets
    scap = sampler.capacity
    swindow = sampler.window
    swindow4 = 4 * swindow
    stways = sampler.tracker_ways
    # Per-core PCHR: [raw pcs, weight hashes, cached tuple(hashes)].  The
    # tuple is rebuilt only when the register actually changes (the front
    # PC differs), since re-inserting the front PC is a no-op.
    pchr = kernel.pchr
    tag_t = kernel.tag_t
    dirty_t = kernel.dirty_t
    rrpv_t = kernel.rrpv_t
    fr_t = kernel.fr_t
    ei_t = kernel.ei_t
    ctx_t = kernel.ctx_t
    fill_count = kernel.fill_count
    dh, dm, wh, wm, ev, dev = (
        kernel.dh, kernel.dm, kernel.wh, kernel.wm, kernel.ev, kernel.dev
    )
    pch = kernel.pch
    pcm = kernel.pcm
    # hist/reg caches are re-derived from pchr per feed: every demand
    # access re-reads them before use and writebacks never do, so
    # resetting at a chunk boundary cannot change behaviour.
    hist: tuple = ()
    reg_core = reg = None
    for s, t, kn, core, pc, ei, whsh, ln, sa in zip(
        sets, tags, kinds, cores, pcs, eidx, whash, lines, samp_acc
    ):
        if kn != _KIND_WRITEBACK:
            # on_access: snapshot the PCHR *before* inserting this PC —
            # prediction, training context and detraining all use it.
            if core != reg_core:
                reg = pchr.get(core)
                if reg is None:
                    reg = [[], [], ()]
                    pchr[core] = reg
                reg_core = core
            reg_pcs = reg[0]
            hist = reg[2]
            if sa:
                if rec_access is not None:
                    # Live prediction from the pre-insertion PCHR, read
                    # before this access's sampler events train — the
                    # same training-order point as the reference.
                    e0 = weights[ei]
                    tot0 = 0
                    for h in hist:
                        tot0 += e0[h]
                    rec_access(ln, pc, tot0 >= AVERSE_SUM, margin=tot0)
                # Inlined _FlatOptGenSampler.access(ln, ei, hist), with
                # train() called directly in the reference event order
                # (reuse verdict first, then stale/overflow detrains).
                sst = sstate[ln % snum]
                socc = sst[0]
                sbase = sst[1]
                snow = sst[2]
                slast = sst[3]
                strk = sst[4]
                sprev = slast.get(ln)
                sfirst = sprev is None or sprev < sbase
                shit = False
                if not sfirst and sst[8] < sprev:
                    shit = True
                    snf = -1
                    for oi in range(sprev - sbase, snow - sbase):
                        sv = socc[oi] + 1
                        socc[oi] = sv
                        if sv == scap:
                            snf = oi
                    if snf >= 0:
                        sst[8] = sbase + snf
                sinfo = strk.get(ln)
                if sinfo is not None:
                    train(sinfo[0], sinfo[1], shit)
                slast[ln] = snow
                socc.append(0)
                snow += 1
                sst[2] = snow
                sexc = len(socc) - swindow
                if sexc > 0:
                    del socc[:sexc]
                    sbase += sexc
                    sst[1] = sbase
                if len(slast) > swindow4:
                    sst[3] = {l: st for l, st in slast.items() if st >= sbase}
                strk[ln] = (ei, hist, snow)
                sby = sst[5]
                sby[snow] = ln
                sstale = None
                sswept = sst[6]
                if sswept < sbase:
                    while sswept < sbase:
                        sold = sby.pop(sswept, None)
                        if sold is not None:
                            sinfo = strk.get(sold)
                            if sinfo is not None and sinfo[2] == sswept:
                                if sstale is None:
                                    sstale = [sold]
                                else:
                                    sstale.append(sold)
                        sswept += 1
                    sst[6] = sswept
                sko = len(strk) - stways
                if sko > 0:
                    if sstale is not None:
                        sko -= len(sstale)
                    scur = sst[7]
                    if scur < sbase:
                        scur = sbase
                    while sko > 0 and scur < snow:
                        sold = sby.get(scur)
                        if sold is not None:
                            sinfo = strk.get(sold)
                            if sinfo is not None and sinfo[2] == scur:
                                if sstale is None:
                                    sstale = [sold]
                                else:
                                    sstale.append(sold)
                                sko -= 1
                            del sby[scur]
                        scur += 1
                    sst[7] = scur
                if sstale is not None:
                    for sold in sstale:
                        sinfo = strk.pop(sold)
                        train(sinfo[0], sinfo[1], False)
            if not reg_pcs or reg_pcs[0] != pc:
                reg_hashes = reg[1]
                if pc in reg_pcs:
                    j = reg_pcs.index(pc)
                    del reg_pcs[j]
                    del reg_hashes[j]
                reg_pcs.insert(0, pc)
                reg_hashes.insert(0, whsh)
                if len(reg_pcs) > k:
                    reg_pcs.pop()
                    reg_hashes.pop()
                reg[2] = tuple(reg_hashes)
        row = tag_t[s]
        if t in row:
            w = row.index(t)
            if kn != _KIND_LOAD:
                dirty_t[s][w] = True
            if kn != _KIND_WRITEBACK:
                e = weights[ei]
                tot = 0
                for h in hist:
                    tot += e[h]
                fr = tot >= AVERSE_SUM
                fr_t[s][w] = fr
                rrpv_t[s][w] = 0 if fr else max_rrpv
                ei_t[s][w] = ei
                if detrain:
                    ctx_t[s][w] = hist
                dh += 1
                pch[core] = pch.get(core, 0) + 1
            else:
                wh += 1
            if record is not None:
                record.append((1, 0, w, -1, 0))
            continue
        if kn != _KIND_WRITEBACK:
            dm += 1
            pcm[core] = pcm.get(core, 0) + 1
        else:
            wm += 1
        ev_tag, ev_dirty = -1, False
        if fill_count[s] < assoc:
            w = row.index(-1)
            fill_count[s] += 1
        else:
            rr = rrpv_t[s]
            w = -1
            for j in range(assoc):
                if rr[j] >= max_rrpv:
                    w = j
                    break
            if w < 0:
                w = 0
                best = rr[0]
                for j in range(1, assoc):
                    if rr[j] > best:
                        best = rr[j]
                        w = j
                if detrain:
                    # A predicted-friendly line evicted before reuse
                    # refutes the prediction: detrain its insertion
                    # context before this access's insertion predicts.
                    ctx = ctx_t[s][w]
                    if ctx is not None and fr_t[s][w]:
                        train(ei_t[s][w], ctx, False)
            ev_tag, ev_dirty = row[w], dirty_t[s][w]
            ev += 1
            if ev_dirty:
                dev += 1
            if rec_evict is not None:
                rec_evict(
                    (ev_tag << rec_tag_shift) | s,
                    predicted_friendly=fr_t[s][w],
                    rrpv=rrpv_t[s][w],
                )
        row[w] = t
        dirty_t[s][w] = kn != _KIND_LOAD
        ei_t[s][w] = ei
        if kn == _KIND_WRITEBACK:
            fr_t[s][w] = False
            rrpv_t[s][w] = max_rrpv
            ctx_t[s][w] = None
        else:
            e = weights[ei]
            tot = 0
            for h in hist:
                tot += e[h]
            if tot < AVERSE_SUM:
                fr_t[s][w] = False
                rrpv_t[s][w] = max_rrpv
            else:
                fr_t[s][w] = True
                rrpv_t[s][w] = (
                    2 if confidence_insertion and tot < hc_cut else 0
                )
                rr = rrpv_t[s]
                frr = fr_t[s]
                for j in range(assoc):
                    if j != w and row[j] != -1 and frr[j]:
                        v = rr[j] + 1
                        rr[j] = v if v < max_rrpv else _AGE_CAP
            ctx_t[s][w] = hist if detrain else None
        if record is not None:
            record.append((0, 0, w, ev_tag, int(ev_dirty)))
    kernel.threshold = threshold
    kernel.hc_cut = hc_cut
    kernel.win_correct = win_correct
    kernel.win_total = win_total
    kernel.dh, kernel.dm, kernel.wh, kernel.wm, kernel.ev, kernel.dev = (
        dh, dm, wh, wm, ev, dev
    )


def _replay_glider(
    stream,
    config: CacheConfig,
    k: int,
    table_bits: int,
    weight_hash_bits: int,
    threshold: int,
    adaptive: bool,
    adapt_interval: int,
    num_sampled_sets: int,
    window_factor: int,
    tracker_ways,
    detrain: bool,
    confidence_insertion: bool,
    record,
) -> CacheStats:
    kernel = _GliderKernel(
        config, k, table_bits, weight_hash_bits, threshold, adaptive,
        adapt_interval, num_sampled_sets, window_factor, tracker_ways,
        detrain, confidence_insertion,
    )
    kernel.feed(stream, record)
    return kernel.finish()
