"""Replacement-policy interface.

The cache core is policy-agnostic: all replacement, insertion-priority
and bypass decisions are delegated to a :class:`ReplacementPolicy`
through the hooks below.  Concrete policies live in
:mod:`repro.policies` and :mod:`repro.core` (Glider).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from .block import CacheLine, CacheRequest

if TYPE_CHECKING:  # pragma: no cover
    from .cache import SetAssociativeCache

#: Sentinel a policy's victim() may return to bypass the cache entirely.
BYPASS = -1


class ReplacementPolicy:
    """Base class for replacement policies.

    Lifecycle per access:

    * hit  -> :meth:`on_hit`
    * miss -> :meth:`victim` (may return :data:`BYPASS`); if a valid line
      is displaced, :meth:`on_evict`; then :meth:`on_fill` for the new
      line (not called on bypass).

    Policies that train on the demand stream regardless of hit/miss can
    override :meth:`on_access`, which is invoked before the hit/miss
    hooks on every demand access.

    **Event-stream contract** (asymmetric by design — this is what the
    cache core guarantees, and what ``tests/cache/test_policy_contract.py``
    pins down):

    * :meth:`on_access` fires for **demand accesses only** (loads and
      stores), never for writebacks.  It models the training stream a
      hardware predictor observes; writebacks carry the *inserting* PC,
      not a program-order PC, so feeding them to a PC-indexed predictor
      would corrupt it (cf. the SHiP++ writeback rules).
    * :meth:`on_hit`, :meth:`victim`, :meth:`on_evict` and
      :meth:`on_fill` fire for **every** access, writebacks included — a
      writeback that hits still touches the line (and must, or per-line
      bookkeeping such as Belady's stored next-use goes stale), and a
      writeback that misses still allocates (write-allocate).

    A policy that must not learn from writebacks therefore checks
    ``request.access_type is AccessType.WRITEBACK`` in the per-line
    hooks itself; it cannot rely on the hooks being demand-filtered.
    """

    #: Short machine name; the registry keys policies by this.
    name = "base"

    def __init__(self) -> None:
        self.cache: "SetAssociativeCache | None" = None

    # -- lifecycle -------------------------------------------------------
    def attach(self, cache: "SetAssociativeCache") -> None:
        """Bind the policy to a cache instance (called once by the cache)."""
        self.cache = cache

    @property
    def num_sets(self) -> int:
        if self.cache is None:
            raise RuntimeError(f"policy {self.name!r} is not attached to a cache")
        return self.cache.num_sets

    @property
    def associativity(self) -> int:
        if self.cache is None:
            raise RuntimeError(f"policy {self.name!r} is not attached to a cache")
        return self.cache.associativity

    # -- hooks -------------------------------------------------------------
    def on_access(self, set_index: int, request: CacheRequest) -> None:
        """Called for every demand access, before hit/miss resolution."""

    def on_hit(self, set_index: int, way: int, request: CacheRequest) -> None:
        """Called when ``request`` hits in ``way`` of ``set_index``."""

    def victim(
        self, set_index: int, request: CacheRequest, ways: Sequence[CacheLine]
    ) -> int:
        """Choose the way to evict for a missing ``request``.

        ``ways`` always has ``associativity`` entries; invalid entries
        should normally be preferred.  Return :data:`BYPASS` to not cache
        the line at all.
        """
        raise NotImplementedError

    def on_fill(self, set_index: int, way: int, request: CacheRequest) -> None:
        """Called after the missing line has been installed in ``way``."""

    def on_evict(
        self, set_index: int, way: int, line: CacheLine, request: CacheRequest
    ) -> None:
        """Called when a valid ``line`` is displaced to make room."""

    # -- conveniences ------------------------------------------------------
    def first_invalid(self, ways: Sequence[CacheLine]) -> int | None:
        """Index of the first invalid way, or None if the set is full."""
        for i, line in enumerate(ways):
            if not line.valid:
                return i
        return None

    def reset(self) -> None:
        """Clear all learned state (between runs); default is stateless."""
