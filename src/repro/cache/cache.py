"""Set-associative cache with pluggable replacement policy."""

from __future__ import annotations

from .block import AccessResult, AccessType, CacheLine, CacheRequest
from .config import CacheConfig
from .policy import BYPASS, ReplacementPolicy
from .stats import CacheStats


class SetAssociativeCache:
    """A write-back, write-allocate set-associative cache.

    The cache is a pure hit/miss structure: it tracks tags and dirty
    bits, delegates replacement to a :class:`ReplacementPolicy`, and
    reports evictions so an enclosing hierarchy can propagate
    writebacks.  It has no timing of its own.
    """

    def __init__(self, config: CacheConfig, policy: ReplacementPolicy) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self.line_size = config.line_size
        self._set_shift = (config.line_size - 1).bit_length()
        self._set_mask = self.num_sets - 1
        self._tag_shift = self._set_mask.bit_length()
        self.sets: list[list[CacheLine]] = [
            [CacheLine() for _ in range(self.associativity)]
            for _ in range(self.num_sets)
        ]
        self.stats = CacheStats(name=config.name)
        self._access_counter = 0
        self._valid_lines = 0
        self.policy = policy
        policy.attach(self)

    # -- address mapping ---------------------------------------------------
    def line_number(self, address: int) -> int:
        return address >> self._set_shift

    def set_index(self, address: int) -> int:
        return self._split(address)[0]

    def tag(self, address: int) -> int:
        return self._split(address)[1]

    def _split(self, address: int) -> tuple[int, int]:
        line = address >> self._set_shift
        return line & self._set_mask, line >> self._tag_shift

    def line_address(self, set_index: int, tag: int) -> int:
        """Reconstruct the byte address of a cached line."""
        line = (tag << self._tag_shift) | set_index
        return line << self._set_shift

    # -- queries ------------------------------------------------------------
    def probe(self, address: int) -> bool:
        """Non-intrusive lookup: True if the line is present (no side effects)."""
        set_index, tag = self._split(address)
        return any(l.valid and l.tag == tag for l in self.sets[set_index])

    def find_way(self, address: int) -> int | None:
        set_index, tag = self._split(address)
        for way, line in enumerate(self.sets[set_index]):
            if line.valid and line.tag == tag:
                return way
        return None

    # -- the access path ------------------------------------------------------
    def access(self, request: CacheRequest) -> AccessResult:
        """Perform one access; returns hit/miss and any eviction."""
        self._access_counter += 1
        set_index, tag = self._split(request.address)
        ways = self.sets[set_index]
        is_demand = request.access_type.is_demand
        if is_demand:
            self.policy.on_access(set_index, request)
        for way, line in enumerate(ways):
            if line.valid and line.tag == tag:
                line.last_touch = self._access_counter
                if request.access_type is not AccessType.LOAD:
                    line.dirty = True
                # on_hit fires for writeback hits too: policies that do
                # not want writeback promotion check the access type
                # themselves, while bookkeeping policies (e.g. Belady's
                # stored next-use) must observe every touch or their
                # per-line state goes stale.
                self.policy.on_hit(set_index, way, request)
                self.stats.record(True, is_demand, request.core)
                return AccessResult(hit=True, way=way)
        # Miss path.
        self.stats.record(False, is_demand, request.core)
        victim_way = self.policy.victim(set_index, request, ways)
        if victim_way == BYPASS:
            self.stats.bypasses += 1
            return AccessResult(hit=False, bypassed=True)
        if not 0 <= victim_way < self.associativity:
            raise ValueError(
                f"{self.policy.name}: victim way {victim_way} out of range "
                f"0..{self.associativity - 1}"
            )
        line = ways[victim_way]
        result_kwargs: dict = {}
        if line.valid:
            self.policy.on_evict(set_index, victim_way, line, request)
            self.stats.evictions += 1
            if line.dirty:
                self.stats.dirty_evictions += 1
            result_kwargs = {
                "evicted_tag": line.tag,
                "evicted_dirty": line.dirty,
                "evicted_pc": line.pc,
                "evicted_core": line.core,
            }
        else:
            self._valid_lines += 1
        line.valid = True
        line.tag = tag
        line.dirty = request.access_type is not AccessType.LOAD
        line.pc = request.pc
        line.core = request.core
        line.last_touch = self._access_counter
        line.insert_time = self._access_counter
        line.policy_state = {}
        self.policy.on_fill(set_index, victim_way, request)
        return AccessResult(hit=False, way=victim_way, **result_kwargs)

    def evicted_line_address(self, set_index: int, result: AccessResult) -> int:
        """Byte address of the line evicted in ``result`` (if any)."""
        if result.evicted_tag < 0:
            raise ValueError("access did not evict a valid line")
        return self.line_address(set_index, result.evicted_tag)

    def invalidate(self, address: int) -> bool:
        """Remove a line if present; returns whether it was there."""
        set_index, tag = self._split(address)
        for line in self.sets[set_index]:
            if line.valid and line.tag == tag:
                line.reset()
                self._valid_lines -= 1
                return True
        return False

    def flush(self) -> None:
        """Invalidate everything and reset the policy's learned state."""
        for ways in self.sets:
            for line in ways:
                line.reset()
        self.policy.reset()
        self._access_counter = 0
        self._valid_lines = 0

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently cached (O(1): counter maintained
        on the fill/invalidate/flush paths, never by rescanning sets)."""
        return self._valid_lines
