"""Cache-simulator substrate: configs, cache structures, hierarchy."""

from .block import AccessResult, AccessType, CacheLine, CacheRequest
from .cache import SetAssociativeCache
from .config import (
    CacheConfig,
    DramConfig,
    HierarchyConfig,
    paper_hierarchy,
    scaled_hierarchy,
)
from .fastsim import (
    FAST_PATH_POLICIES,
    EngineParityError,
    fast_filter_to_llc_stream,
    verify_parity,
)
from .hierarchy import (
    CacheHierarchy,
    LLCStream,
    filter_to_llc_stream,
    simulate_llc,
)
from .policy import BYPASS, ReplacementPolicy
from .stats import CacheStats

__all__ = [
    "AccessResult",
    "AccessType",
    "BYPASS",
    "CacheConfig",
    "CacheHierarchy",
    "CacheLine",
    "CacheRequest",
    "CacheStats",
    "DramConfig",
    "EngineParityError",
    "FAST_PATH_POLICIES",
    "HierarchyConfig",
    "LLCStream",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "fast_filter_to_llc_stream",
    "filter_to_llc_stream",
    "paper_hierarchy",
    "scaled_hierarchy",
    "simulate_llc",
    "verify_parity",
]
