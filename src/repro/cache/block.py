"""Cache-line metadata and access records shared across the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class AccessType(Enum):
    """Kind of request arriving at a cache level."""

    LOAD = "load"
    STORE = "store"  # demand store (RFO)
    WRITEBACK = "writeback"  # dirty eviction from the level above

    @property
    def is_demand(self) -> bool:
        """Demand accesses train predictors; writebacks usually do not."""
        return self is not AccessType.WRITEBACK


@dataclass
class CacheLine:
    """One way of one set.

    Replacement policies may stash arbitrary per-line state in
    ``policy_state`` (e.g. an RRPV counter, a SHiP signature, Hawkeye's
    predicted class); the cache core never touches it.
    """

    valid: bool = False
    tag: int = -1
    dirty: bool = False
    pc: int = 0  # PC that inserted the line (for writeback attribution)
    core: int = 0
    last_touch: int = 0  # access counter at last touch (LRU bookkeeping)
    insert_time: int = 0
    policy_state: dict = field(default_factory=dict)

    def reset(self) -> None:
        """Invalidate the line and clear all metadata."""
        self.valid = False
        self.tag = -1
        self.dirty = False
        self.pc = 0
        self.core = 0
        self.last_touch = 0
        self.insert_time = 0
        self.policy_state = {}


@dataclass(slots=True)
class CacheRequest:
    """A request presented to a cache level.

    ``address`` is a byte address; the cache derives line/set/tag.
    ``access_index`` is a monotonically increasing per-simulation counter
    used by offline-oracle policies (Belady) to look up future reuse.

    (Slotted, non-frozen dataclass: requests are created once per access
    on the simulator's hottest path.)
    """

    pc: int
    address: int
    access_type: AccessType = AccessType.LOAD
    core: int = 0
    access_index: int = 0


@dataclass(slots=True)
class AccessResult:
    """Outcome of one cache-level access.

    ``way`` is the way that served the access: the hit way on a hit, the
    fill way on a miss, and -1 on a bypass.  Engine-parity checks key on
    it (see :mod:`repro.cache.fastsim`).
    """

    hit: bool
    bypassed: bool = False
    way: int = -1
    evicted_tag: int = -1
    evicted_dirty: bool = False
    evicted_pc: int = 0
    evicted_core: int = 0

    @property
    def caused_writeback(self) -> bool:
        return self.evicted_dirty and self.evicted_tag >= 0
