"""Cache and hierarchy configuration (paper Table 1).

Two stock configurations are provided:

* :func:`paper_hierarchy` — the exact Table 1 parameters (32 KB L1,
  256 KB L2, 2 MB/core 16-way LLC, CRC2 latencies).
* :func:`scaled_hierarchy` — the same shape scaled down so that the
  synthetic traces (10^5–10^6 accesses) exercise the same capacity
  pressure a 1-billion-instruction SimPoint exerts on a 2 MB LLC.  All
  experiments default to this configuration; the scale factor is the only
  difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_size: int = 64
    latency: int = 4  # hit latency, cycles

    def __post_init__(self) -> None:
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if self.size_bytes % (self.line_size * self.associativity):
            raise ValueError(
                f"{self.name}: size must be a multiple of line_size * associativity"
            )
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{self.name}: number of sets must be a power of two")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class DramConfig:
    """First-order DRAM model parameters (Table 1's bottom row).

    ``latency`` is the flat access latency in core cycles (row timing
    folded in); ``bandwidth_bytes_per_cycle`` throttles multi-core runs.
    """

    latency: int = 150
    bandwidth_bytes_per_cycle: float = 3.2  # single-core: 3.2 GB/s at 1 GHz
    line_size: int = 64

    def cycles_per_line(self) -> float:
        """Cycles of bus occupancy per cache-line transfer."""
        return self.line_size / self.bandwidth_bytes_per_cycle


@dataclass(frozen=True)
class HierarchyConfig:
    """A three-level hierarchy plus DRAM, per core."""

    l1: CacheConfig
    l2: CacheConfig
    llc: CacheConfig
    dram: DramConfig = field(default_factory=DramConfig)
    cores: int = 1

    @property
    def llc_lines(self) -> int:
        return self.llc.num_lines


def paper_hierarchy(cores: int = 1) -> HierarchyConfig:
    """Exact Table 1 configuration: 2 MB 16-way LLC per core."""
    return HierarchyConfig(
        l1=CacheConfig("L1D", 32 * 1024, 8, latency=4),
        l2=CacheConfig("L2", 256 * 1024, 8, latency=12),
        llc=CacheConfig("LLC", cores * 2 * 1024 * 1024, 16, latency=26),
        dram=DramConfig(
            latency=150,
            bandwidth_bytes_per_cycle=3.2 * cores if cores > 1 else 3.2,
        ),
        cores=cores,
    )


def scaled_hierarchy(cores: int = 1, scale: int = 8) -> HierarchyConfig:
    """Table 1 scaled down by ``scale`` for laptop-scale traces.

    With the default ``scale=8`` the LLC is 256 KB/core (4096 lines for a
    single core), matching the working-set sizes the synthetic workload
    models are built against (``DEFAULT_LLC_LINES``).
    """
    return HierarchyConfig(
        l1=CacheConfig("L1D", 32 * 1024 // scale, 8, latency=4),
        l2=CacheConfig("L2", 256 * 1024 // scale, 8, latency=12),
        llc=CacheConfig("LLC", cores * 2 * 1024 * 1024 // scale, 16, latency=26),
        dram=DramConfig(
            latency=150,
            bandwidth_bytes_per_cycle=3.2 * cores if cores > 1 else 3.2,
        ),
        cores=cores,
    )
