"""Per-level cache statistics."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache level.

    Demand and writeback traffic are counted separately because the
    paper's miss-rate metrics (Figure 11) are over demand accesses only.
    """

    name: str = "cache"
    demand_hits: int = 0
    demand_misses: int = 0
    writeback_hits: int = 0
    writeback_misses: int = 0
    bypasses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    per_core_hits: dict[int, int] = field(default_factory=dict)
    per_core_misses: dict[int, int] = field(default_factory=dict)

    @property
    def demand_accesses(self) -> int:
        return self.demand_hits + self.demand_misses

    @property
    def accesses(self) -> int:
        return self.demand_accesses + self.writeback_hits + self.writeback_misses

    @property
    def hits(self) -> int:
        return self.demand_hits + self.writeback_hits

    @property
    def misses(self) -> int:
        return self.demand_misses + self.writeback_misses

    @property
    def demand_miss_rate(self) -> float:
        total = self.demand_accesses
        return self.demand_misses / total if total else 0.0

    @property
    def demand_hit_rate(self) -> float:
        total = self.demand_accesses
        return self.demand_hits / total if total else 0.0

    def record(self, hit: bool, is_demand: bool, core: int = 0) -> None:
        if is_demand:
            if hit:
                self.demand_hits += 1
                self.per_core_hits[core] = self.per_core_hits.get(core, 0) + 1
            else:
                self.demand_misses += 1
                self.per_core_misses[core] = self.per_core_misses.get(core, 0) + 1
        else:
            if hit:
                self.writeback_hits += 1
            else:
                self.writeback_misses += 1

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return a new CacheStats with the counters of both."""
        merged = CacheStats(name=self.name)
        for attr in (
            "demand_hits",
            "demand_misses",
            "writeback_hits",
            "writeback_misses",
            "bypasses",
            "evictions",
            "dirty_evictions",
        ):
            setattr(merged, attr, getattr(self, attr) + getattr(other, attr))
        for src in (self.per_core_hits, other.per_core_hits):
            for core, n in src.items():
                merged.per_core_hits[core] = merged.per_core_hits.get(core, 0) + n
        for src in (self.per_core_misses, other.per_core_misses):
            for core, n in src.items():
                merged.per_core_misses[core] = merged.per_core_misses.get(core, 0) + n
        return merged

    def as_dict(self) -> dict:
        """JSON-safe counter dump (per-core maps keyed by stringified id),
        the shape embedded in metrics snapshots and crash journals."""
        return {
            "name": self.name,
            "demand_hits": self.demand_hits,
            "demand_misses": self.demand_misses,
            "writeback_hits": self.writeback_hits,
            "writeback_misses": self.writeback_misses,
            "bypasses": self.bypasses,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
            "demand_miss_rate": self.demand_miss_rate,
            "per_core_hits": {str(c): n for c, n in sorted(self.per_core_hits.items())},
            "per_core_misses": {
                str(c): n for c, n in sorted(self.per_core_misses.items())
            },
        }

    def summary(self) -> str:
        return (
            f"{self.name}: {self.demand_accesses} demand accesses, "
            f"{self.demand_hits} hits, {self.demand_misses} misses "
            f"(miss rate {self.demand_miss_rate:.3f})"
        )
