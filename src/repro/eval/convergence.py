"""Figure 15: convergence rate of the four offline models.

Test accuracy as a function of the number of iterations over the
training set: the offline ISVM converges in ~1 iteration, Hawkeye and
Perceptron converge fast but plateau lower, and the LSTM needs 10-15
iterations (the paper's core practicality argument in Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ml.svm import OfflineHawkeye, OfflineISVM, OrderedHistorySVM
from ..ml.training import train_linear_model, train_lstm
from .runner import DEFAULT, ArtifactCache, ExperimentConfig
from .tables import arithmetic_mean


@dataclass
class ConvergenceCurves:
    """Per-model test-accuracy-per-epoch curves (averaged over benchmarks)."""

    epochs: int
    curves: dict[str, list[float]] = field(default_factory=dict)

    def iterations_to_converge(self, model: str, tolerance: float = 0.01) -> int:
        curve = self.curves[model]
        final = curve[-1]
        for i, acc in enumerate(curve):
            if acc >= final - tolerance:
                return i + 1
        return len(curve)

    def rows(self) -> list[dict]:
        rows = []
        for epoch in range(self.epochs):
            row: dict = {"iteration": epoch + 1}
            for model, curve in self.curves.items():
                row[model] = 100 * curve[epoch] if epoch < len(curve) else float("nan")
            rows.append(row)
        return rows


def convergence_curves(
    config: ExperimentConfig = DEFAULT,
    benchmarks: tuple[str, ...] | None = None,
    epochs: int = 12,
    cache: ArtifactCache | None = None,
    include_lstm: bool = True,
) -> ConvergenceCurves:
    """Reproduce Figure 15."""
    cache = cache or ArtifactCache(config)
    benchmarks = benchmarks or config.offline_benchmarks[:3]
    labelled_traces = [cache.labelled(b) for b in benchmarks]
    result = ConvergenceCurves(epochs=epochs)
    linear_models = {
        "Offline ISVM": lambda: OfflineISVM(k=5),
        "Perceptron": lambda: OrderedHistorySVM(history_length=3),
        "Hawkeye": lambda: OfflineHawkeye(),
    }
    for name, factory in linear_models.items():
        per_bench: list[list[float]] = []
        for lt in labelled_traces:
            run = train_linear_model(factory(), lt, epochs=epochs)
            per_bench.append(run.epoch_accuracies)
        result.curves[name] = [
            arithmetic_mean([c[e] for c in per_bench]) for e in range(epochs)
        ]
    if include_lstm:
        per_bench = []
        for lt in labelled_traces:
            _, run = train_lstm(
                lt, config.lstm_config(lt.vocab_size), epochs=epochs
            )
            per_bench.append(run.epoch_accuracies)
        result.curves["Attention LSTM"] = [
            arithmetic_mean([c[e] for c in per_bench]) for e in range(epochs)
        ]
    return result
