"""Experiment harness: one module per paper table/figure.

See DESIGN.md's per-experiment index for the mapping:

* Figure 4/5 -> `attention_analysis`
* Figure 6 -> `shuffle`
* Figure 9/10 -> `accuracy`
* Figure 11 -> `missrate`
* Figure 12 -> `speedup`
* Figure 13 -> `multicore`
* Figure 14 -> `seqlen`
* Figure 15 -> `convergence`
* Table 2 -> `repro.traces.stats`
* Table 3 -> `cost`
* Table 4 -> `semantics`
"""

from .accuracy import (
    OfflineAccuracyResult,
    OnlineAccuracyResult,
    offline_accuracy,
    online_accuracy,
)
from .attention_analysis import (
    AttentionCDFResult,
    AttentionHeatmap,
    attention_cdf,
    attention_heatmap,
)
from .convergence import ConvergenceCurves, convergence_curves
from .cost import ModelCost, model_cost_table
from .plots import ascii_plot, s_curve
from .missrate import (
    CONTENDERS,
    MissRateResult,
    miss_rate_reduction,
    summarize_by_group,
)
from .multicore import MixResult, summarize_mixes, weighted_speedup_sweep
from .runner import DEFAULT, QUICK, ArtifactCache, ExperimentConfig
from .semantics import TargetPCResult, anchor_pc_analysis, shares_anchor
from .seqlen import SequenceLengthCurves, sequence_length_sweep
from .shuffle import ShuffleResult, shuffle_experiment
from .speedup import SpeedupResult, single_core_speedup, summarize_speedups
from .tables import arithmetic_mean, format_table, geometric_mean

__all__ = [
    "ArtifactCache",
    "AttentionCDFResult",
    "AttentionHeatmap",
    "CONTENDERS",
    "ConvergenceCurves",
    "DEFAULT",
    "ExperimentConfig",
    "MissRateResult",
    "MixResult",
    "ModelCost",
    "OfflineAccuracyResult",
    "OnlineAccuracyResult",
    "QUICK",
    "SequenceLengthCurves",
    "ShuffleResult",
    "SpeedupResult",
    "TargetPCResult",
    "anchor_pc_analysis",
    "arithmetic_mean",
    "ascii_plot",
    "attention_cdf",
    "attention_heatmap",
    "convergence_curves",
    "format_table",
    "geometric_mean",
    "miss_rate_reduction",
    "model_cost_table",
    "offline_accuracy",
    "online_accuracy",
    "s_curve",
    "sequence_length_sweep",
    "shares_anchor",
    "shuffle_experiment",
    "single_core_speedup",
    "summarize_by_group",
    "summarize_mixes",
    "summarize_speedups",
    "weighted_speedup_sweep",
]
