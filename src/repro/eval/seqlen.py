"""Figure 14: accuracy versus history length.

Three curves, matched to the paper's axes:

* attention LSTM with sequence length N from 10 to 100 (saturates ~30);
* offline ISVM with k (unique PCs) from 1 to 10 (saturates ~5-6);
* ordered-history SVM ("Perceptron") with history length 1 to 10
  (saturates ~4, below the ISVM).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ml.svm import OfflineISVM, OrderedHistorySVM
from ..ml.training import train_linear_model, train_lstm
from .runner import DEFAULT, ArtifactCache, ExperimentConfig
from .tables import arithmetic_mean


@dataclass
class SequenceLengthCurves:
    """The three Figure 14 curves, averaged over benchmarks.

    Keys are the x-axis values: sequence length N for the LSTM, number
    of unique PCs (k) for the ISVM, ordered history length for the SVM.
    """

    lstm: dict[int, float] = field(default_factory=dict)
    isvm: dict[int, float] = field(default_factory=dict)
    perceptron: dict[int, float] = field(default_factory=dict)

    def saturation_point(self, curve: str, tolerance: float = 0.01) -> int:
        """Smallest x within ``tolerance`` of the curve's maximum."""
        data = getattr(self, curve)
        if not data:
            return 0
        best = max(data.values())
        for x in sorted(data):
            if data[x] >= best - tolerance:
                return x
        return max(data)

    def rows(self) -> list[dict]:
        xs = sorted(set(self.lstm) | set(self.isvm) | set(self.perceptron))
        rows = []
        for x in xs:
            rows.append(
                {
                    "history": x,
                    "Attention LSTM %": 100 * self.lstm.get(x, float("nan")),
                    "Offline ISVM %": 100 * self.isvm.get(x, float("nan")),
                    "Perceptron %": 100 * self.perceptron.get(x, float("nan")),
                }
            )
        return rows


def sequence_length_sweep(
    config: ExperimentConfig = DEFAULT,
    benchmarks: tuple[str, ...] | None = None,
    lstm_lengths: tuple[int, ...] = (10, 20, 30, 40, 50),
    linear_ks: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    linear_epochs: int = 8,
    cache: ArtifactCache | None = None,
    include_lstm: bool = True,
) -> SequenceLengthCurves:
    """Reproduce Figure 14 (averaged over ``benchmarks``)."""
    cache = cache or ArtifactCache(config)
    benchmarks = benchmarks or config.offline_benchmarks[:3]
    curves = SequenceLengthCurves()
    labelled_traces = [cache.labelled(b) for b in benchmarks]
    for k in linear_ks:
        isvm_acc = [
            train_linear_model(OfflineISVM(k=k), lt, epochs=linear_epochs).test_accuracy
            for lt in labelled_traces
        ]
        perc_acc = [
            train_linear_model(
                OrderedHistorySVM(history_length=k), lt, epochs=linear_epochs
            ).test_accuracy
            for lt in labelled_traces
        ]
        curves.isvm[k] = arithmetic_mean(isvm_acc)
        curves.perceptron[k] = arithmetic_mean(perc_acc)
    if include_lstm:
        for n in lstm_lengths:
            accs = []
            for lt in labelled_traces:
                _, run = train_lstm(
                    lt,
                    config.lstm_config(lt.vocab_size, history=n),
                    epochs=config.lstm_epochs,
                )
                accs.append(run.test_accuracy)
            curves.lstm[n] = arithmetic_mean(accs)
    return curves
