"""Table 4 / Section 5.5: learning high-level program semantics.

The call-context workload plants the paper's scheduleAt() structure:
shared target PCs whose caching behaviour is decided by which caller
(anchor PC) invoked them.  This experiment reports, per target PC:

* Hawkeye's (PC-only) accuracy — capped by the majority class, and
* the attention LSTM's accuracy — able to condition on the anchor, plus
* the *source PC with the highest attention weight* for that target,
  which should be the friendly caller's anchor PC for every target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.dataset import LabelledTrace, SequenceDataset
from ..ml.model import AttentionLSTM
from ..ml.svm import OfflineHawkeye
from ..ml.training import train_linear_model, train_lstm
from .runner import DEFAULT, ArtifactCache, ExperimentConfig


@dataclass
class TargetPCResult:
    """One Table 4 row."""

    target_pc: int
    attended_source_pc: int
    hawkeye_accuracy: float
    lstm_accuracy: float
    samples: int

    def as_row(self) -> dict:
        return {
            "Target PC": hex(self.target_pc),
            "Source PC": hex(self.attended_source_pc),
            "Hawkeye %": 100 * self.hawkeye_accuracy,
            "LSTM %": 100 * self.lstm_accuracy,
            "n": self.samples,
        }


def _per_pc_accuracy_hawkeye(
    model: OfflineHawkeye, test: LabelledTrace, dense_pc: int
) -> tuple[float, int]:
    mask = test.pcs == dense_pc
    total = int(np.sum(mask))
    if not total:
        return 0.0, 0
    prediction = model.predict(dense_pc)
    correct = int(np.sum(test.labels[mask] == prediction))
    return correct / total, total


def _per_pc_lstm_stats(
    model: AttentionLSTM,
    dataset: SequenceDataset,
    dense_targets: list[int],
) -> dict[int, dict]:
    """Accuracy and attention-by-source-PC for each dense target id."""
    stats = {
        t: {"correct": 0, "total": 0, "attention": {}} for t in dense_targets
    }
    history = dataset.history
    for batch in dataset.batches(model.config.batch_size):
        logits, _ = model.forward(batch.inputs)
        weights = model.attention_weights(batch.inputs)
        predictions = logits >= 0.0
        truth = batch.targets > 0.5
        for b in range(batch.inputs.shape[0]):
            for t in range(history, batch.inputs.shape[1]):
                pc = int(batch.inputs[b, t])
                if pc not in stats:
                    continue
                entry = stats[pc]
                entry["total"] += 1
                entry["correct"] += int(predictions[b, t] == truth[b, t])
                for s in range(t):
                    source_pc = int(batch.inputs[b, s])
                    if source_pc == pc:
                        continue  # self-attention to the same static PC
                    w = float(weights[b, t, s])
                    entry["attention"][source_pc] = (
                        entry["attention"].get(source_pc, 0.0) + w
                    )
    return stats


def anchor_pc_analysis(
    config: ExperimentConfig = DEFAULT,
    benchmark: str = "omnetpp",
    cache: ArtifactCache | None = None,
    hawkeye_epochs: int = 5,
) -> list[TargetPCResult]:
    """Reproduce Table 4 on the call-context workload."""
    cache = cache or ArtifactCache(config)
    labelled = cache.labelled(benchmark)
    target_pcs = labelled.metadata.get("target_pcs")
    if not target_pcs:
        raise ValueError(
            f"benchmark {benchmark!r} carries no target_pcs metadata; use the "
            "call-context workloads (omnetpp / 620.omnetpp)"
        )
    dense_targets = []
    for pc in target_pcs:
        try:
            dense_targets.append(labelled.dense_id(pc))
        except KeyError:
            continue  # target never reached the LLC stream
    train, test = labelled.split()
    hawkeye = OfflineHawkeye()
    train_linear_model(hawkeye, labelled, epochs=hawkeye_epochs)
    model, _ = train_lstm(
        labelled,
        config.lstm_config(labelled.vocab_size, attention_scale=3.0),
        epochs=config.lstm_epochs,
    )
    test_set = SequenceDataset.from_labelled(test, config.lstm_history)
    lstm_stats = _per_pc_lstm_stats(model, test_set, dense_targets)
    results: list[TargetPCResult] = []
    for dense_pc in dense_targets:
        hawkeye_acc, _ = _per_pc_accuracy_hawkeye(hawkeye, test, dense_pc)
        entry = lstm_stats[dense_pc]
        lstm_acc = entry["correct"] / max(1, entry["total"])
        attention = entry["attention"]
        if attention:
            best_source = max(attention, key=lambda s: attention[s])
            source_pc = int(labelled.vocabulary[best_source])
        else:
            source_pc = 0
        results.append(
            TargetPCResult(
                target_pc=int(labelled.vocabulary[dense_pc]),
                attended_source_pc=source_pc,
                hawkeye_accuracy=hawkeye_acc,
                lstm_accuracy=lstm_acc,
                samples=entry["total"],
            )
        )
    return results


def shares_anchor(results: list[TargetPCResult]) -> bool:
    """Do all targets attend to the same source PC (the paper's finding)?"""
    sources = {r.attended_source_pc for r in results if r.samples > 0}
    return len(sources) <= 1 and bool(results)
