"""Table 3: model size and computational cost per sample.

Sizes are computed from the actual model objects (not quoted), using the
paper's accounting: the LSTM stores 4-byte floats; the hardware models
store integer weights/counters.  Operation counts are per predicted
sample: multiply-accumulates for the LSTM, table additions for the
integer models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.glider import GliderConfig
from ..core.isvm import ISVM
from ..ml.model import AttentionLSTM, LSTMConfig


@dataclass
class ModelCost:
    """One Table 3 row."""

    model: str
    size_kb: float
    train_ops: float
    test_ops: float

    def as_row(self) -> dict:
        return {
            "Model": self.model,
            "Model Size (KB)": round(self.size_kb, 1),
            "Training ops/sample": round(self.train_ops, 1),
            "Test ops/sample": round(self.test_ops, 1),
        }


def lstm_cost(config: LSTMConfig | None = None) -> ModelCost:
    """LSTM cost from the architecture's arithmetic (paper dims by default)."""
    config = config or LSTMConfig()
    model = AttentionLSTM(config)
    size_kb = model.model_size_bytes(bytes_per_param=4) / 1024.0
    D, H = config.embedding_dim, config.hidden_dim
    # Forward MACs per position: LSTM gates + attention scores/context +
    # classifier; backward roughly doubles it, parameter update adds one
    # more pass (the standard 3x rule).
    lstm_ops = 4 * H * (D + H)
    attention_ops = 2 * config.history * H  # scores + context over ~N sources
    classifier_ops = 2 * H
    forward = lstm_ops + attention_ops + classifier_ops
    return ModelCost(
        model="LSTM (predictor only)",
        size_kb=size_kb,
        train_ops=3.0 * forward,
        test_ops=float(forward),
    )


def glider_cost(config: GliderConfig | None = None) -> ModelCost:
    """Glider cost from its hardware budget (Section 5.4)."""
    config = config or GliderConfig()
    isvm_table_kb = (1 << config.table_bits) * ISVM.NUM_WEIGHTS / 1024.0
    pchr_kb = 0.1
    # Hawkeye machinery Glider retains: per-line state, sampler, OPTgen.
    hawkeye_base_kb = 12.0 + 12.7 + 4.0
    # Train: retrieve + add/compare k weights, update k weights; predict:
    # retrieve + sum k weights + 3 comparisons — ~8 table ops each, per
    # the paper's accounting.
    ops = float(config.k + 3)
    return ModelCost(
        model="Glider",
        size_kb=isvm_table_kb + pchr_kb + hawkeye_base_kb,
        train_ops=ops,
        test_ops=ops,
    )


def perceptron_cost(num_features: int = 9, table_kb: float = 29.0) -> ModelCost:
    return ModelCost(
        model="Perceptron",
        size_kb=table_kb,
        train_ops=float(num_features),
        test_ops=float(num_features),
    )


def hawkeye_cost(table_bits: int = 11) -> ModelCost:
    # One counter lookup per prediction and per update.
    size_kb = (1 << table_bits) * 3 / 8 / 1024.0 + 28.7  # counters + machinery
    return ModelCost(model="Hawkeye", size_kb=size_kb, train_ops=1.0, test_ops=1.0)


def model_cost_table(lstm_config: LSTMConfig | None = None) -> list[ModelCost]:
    """Reproduce Table 3 (LSTM at the paper's 128/128 dims by default)."""
    return [
        lstm_cost(lstm_config),
        glider_cost(),
        perceptron_cost(),
        hawkeye_cost(),
    ]
