"""ASCII line plots for benchmark-harness output.

The paper's figures are line/bar charts; the harness prints their data
as tables plus, where the shape matters (S-curves, saturation curves),
a terminal-friendly ASCII rendition from this module.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def ascii_plot(
    series: Mapping[str, Mapping[float, float]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render one or more (x -> y) series as an ASCII chart.

    Each series gets a marker character; x positions are scaled to the
    union of all x values, y to the union of all y values.
    """
    markers = "ox+*#@%&"
    points: list[tuple[float, float, str]] = []
    for i, (name, curve) in enumerate(series.items()):
        marker = markers[i % len(markers)]
        for x, y in curve.items():
            points.append((float(x), float(y), marker))
    if not points:
        return f"{title}\n(no data)" if title else "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int(round((x - x_min) / x_span * (width - 1)))
        row = height - 1 - int(round((y - y_min) / y_span * (height - 1)))
        grid[row][col] = marker
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:>10.3f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:>10.3f} +" + "-" * width)
    lines.append(" " * 12 + f"{x_min:<10.3g}" + " " * max(0, width - 20) + f"{x_max:>10.3g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend + (f"   (y: {y_label})" if y_label else ""))
    return "\n".join(lines)


def s_curve(values: Sequence[float], label: str = "") -> dict[str, dict[float, float]]:
    """Sort values ascending into an S-curve series (Figure 13 style)."""
    ordered = sorted(values)
    return {label or "series": {float(i): v for i, v in enumerate(ordered)}}
