"""Figure 6: accuracy on the original vs randomly shuffled history.

The paper's Observation 3: shuffling the *source* portion of each test
sequence (time steps 1..N-1, keeping the target position fixed) barely
degrades accuracy, showing the model keys on the *presence* of PCs, not
their order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.dataset import SequenceDataset
from ..ml.model import AttentionLSTM
from ..ml.training import train_lstm
from .runner import DEFAULT, ArtifactCache, ExperimentConfig
from .tables import arithmetic_mean


@dataclass
class ShuffleResult:
    """One Figure 6 benchmark group."""

    benchmark: str
    original_accuracy: float
    shuffled_accuracy: float

    @property
    def degradation(self) -> float:
        return self.original_accuracy - self.shuffled_accuracy

    def as_row(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "original %": 100 * self.original_accuracy,
            "shuffled %": 100 * self.shuffled_accuracy,
            "delta %": 100 * self.degradation,
        }


def _shuffled_accuracy(
    model: AttentionLSTM, dataset: SequenceDataset, seed: int
) -> float:
    """Evaluate with each target's history window randomly permuted.

    For every labelled position t (second half of each window) the
    inputs 0..t-1 are shuffled; positions from t onward are untouched.
    Evaluating each target position exactly requires one forward pass per
    target; we batch by shuffling once per sequence and scoring only the
    *last* labelled position, which sees a fully shuffled history — the
    strictest version of the paper's test.
    """
    rng = np.random.default_rng(seed)
    correct = 0
    total = 0
    for batch in dataset.batches(model.config.batch_size):
        inputs = batch.inputs.copy()
        target_pos = inputs.shape[1] - 1
        for row in range(inputs.shape[0]):
            history = inputs[row, :target_pos]
            rng.shuffle(history)
            inputs[row, :target_pos] = history
        logits, _ = model.forward(inputs)
        predictions = logits[:, target_pos] >= 0.0
        truth = batch.targets[:, target_pos] > 0.5
        correct += int(np.sum(predictions == truth))
        total += inputs.shape[0]
    return correct / max(1, total)


def _original_last_position_accuracy(
    model: AttentionLSTM, dataset: SequenceDataset
) -> float:
    correct = 0
    total = 0
    for batch in dataset.batches(model.config.batch_size):
        logits, _ = model.forward(batch.inputs)
        target_pos = batch.inputs.shape[1] - 1
        predictions = logits[:, target_pos] >= 0.0
        truth = batch.targets[:, target_pos] > 0.5
        correct += int(np.sum(predictions == truth))
        total += batch.inputs.shape[0]
    return correct / max(1, total)


def shuffle_experiment(
    config: ExperimentConfig = DEFAULT,
    benchmarks: tuple[str, ...] | None = None,
    cache: ArtifactCache | None = None,
) -> list[ShuffleResult]:
    """Reproduce Figure 6 (average group appended)."""
    cache = cache or ArtifactCache(config)
    benchmarks = benchmarks or config.offline_benchmarks
    results: list[ShuffleResult] = []
    for benchmark in benchmarks:
        labelled = cache.labelled(benchmark)
        model, _ = train_lstm(
            labelled,
            config.lstm_config(labelled.vocab_size),
            epochs=config.lstm_epochs,
        )
        _, test = labelled.split()
        test_set = SequenceDataset.from_labelled(test, config.lstm_history)
        results.append(
            ShuffleResult(
                benchmark=benchmark,
                original_accuracy=_original_last_position_accuracy(model, test_set),
                shuffled_accuracy=_shuffled_accuracy(model, test_set, config.seed),
            )
        )
    results.append(
        ShuffleResult(
            benchmark="average",
            original_accuracy=arithmetic_mean([r.original_accuracy for r in results]),
            shuffled_accuracy=arithmetic_mean([r.shuffled_accuracy for r in results]),
        )
    )
    return results
