"""Figures 4 and 5: interpreting the attention layer.

* Figure 4: the cumulative distribution of attention weights for
  scaling factors f in {1..5}, with per-f test accuracy — showing that
  larger f forces sparsity at no accuracy cost.
* Figure 5: attention-weight matrices over consecutive accesses,
  exposing the few dominant source PCs (the oblique lines).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.dataset import SequenceDataset
from ..ml.training import train_lstm
from .runner import DEFAULT, ArtifactCache, ExperimentConfig


@dataclass
class AttentionCDFResult:
    """One Figure 4 curve: weight distribution stats for one scale f."""

    scale: float
    accuracy: float
    weights: np.ndarray  # flattened nonzero attention weights
    quantiles: dict[float, float]
    max_weight_mean: float  # mean (over targets) of the max source weight

    def as_row(self) -> dict:
        return {
            "scale": self.scale,
            "accuracy %": 100 * self.accuracy,
            "p50 weight": self.quantiles[0.5],
            "p90 weight": self.quantiles[0.9],
            "p99 weight": self.quantiles[0.99],
            "mean max weight": self.max_weight_mean,
        }


def _collect_weights(model, dataset: SequenceDataset, max_batches: int = 4) -> np.ndarray:
    """Gather attention weights over labelled (second-half) positions."""
    collected: list[np.ndarray] = []
    for i, batch in enumerate(dataset.batches(model.config.batch_size)):
        if i >= max_batches:
            break
        weights = model.attention_weights(batch.inputs)  # (B, T, T)
        history = dataset.history
        # Only target rows in the prediction half carry meaning.
        collected.append(weights[:, history:, :].reshape(-1, weights.shape[-1]))
    return np.concatenate(collected, axis=0) if collected else np.zeros((0, 1))


def attention_cdf(
    config: ExperimentConfig = DEFAULT,
    benchmark: str = "omnetpp",
    scales: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0),
    cache: ArtifactCache | None = None,
) -> list[AttentionCDFResult]:
    """Reproduce Figure 4: train one model per scaling factor f."""
    cache = cache or ArtifactCache(config)
    labelled = cache.labelled(benchmark)
    _, test = labelled.split()
    test_set = SequenceDataset.from_labelled(test, config.lstm_history)
    results: list[AttentionCDFResult] = []
    for scale in scales:
        model, run = train_lstm(
            labelled,
            config.lstm_config(labelled.vocab_size, attention_scale=scale),
            epochs=config.lstm_epochs,
        )
        rows = _collect_weights(model, test_set)
        nonzero = rows[rows > 1e-9]
        quantiles = {
            q: float(np.quantile(nonzero, q)) if nonzero.size else 0.0
            for q in (0.5, 0.9, 0.99)
        }
        max_mean = float(np.mean(rows.max(axis=1))) if rows.size else 0.0
        results.append(
            AttentionCDFResult(
                scale=scale,
                accuracy=run.test_accuracy,
                weights=nonzero,
                quantiles=quantiles,
                max_weight_mean=max_mean,
            )
        )
    return results


@dataclass
class AttentionHeatmap:
    """One Figure 5 panel: attention weights of consecutive targets.

    ``matrix[t, s]`` is the weight target ``t`` places on the source at
    *offset* ``s - window`` relative to it (columns ordered oldest ->
    most recent, as in the paper's x-axis).
    """

    benchmark: str
    matrix: np.ndarray
    window: int

    def dominant_offsets(self, top: int = 1) -> np.ndarray:
        """Per-target offsets (relative, negative) of the top sources."""
        order = np.argsort(-self.matrix, axis=1)[:, :top]
        return order - self.window

    def sparsity(self, threshold: float = 0.5) -> float:
        """Fraction of targets whose single best source holds >= threshold."""
        if not self.matrix.size:
            return 0.0
        return float(np.mean(self.matrix.max(axis=1) >= threshold))


def attention_heatmap(
    config: ExperimentConfig = DEFAULT,
    benchmark: str = "omnetpp",
    scale: float = 5.0,
    num_targets: int = 100,
    cache: ArtifactCache | None = None,
    model=None,
) -> AttentionHeatmap:
    """Reproduce Figure 5: per-target attention over relative offsets."""
    cache = cache or ArtifactCache(config)
    labelled = cache.labelled(benchmark)
    if model is None:
        model, _ = train_lstm(
            labelled,
            config.lstm_config(labelled.vocab_size, attention_scale=scale),
            epochs=config.lstm_epochs,
        )
    _, test = labelled.split()
    window = config.lstm_history
    test_set = SequenceDataset.from_labelled(test, window)
    rows: list[np.ndarray] = []
    for batch in test_set.batches(model.config.batch_size):
        weights = model.attention_weights(batch.inputs)  # (B, T, T)
        for b in range(weights.shape[0]):
            for t in range(window, 2 * window):
                # Re-index absolute source position to offset from target.
                row = np.zeros(window)
                sources = weights[b, t, :t]
                take = min(window, len(sources))
                row[window - take :] = sources[len(sources) - take :]
                rows.append(row)
                if len(rows) >= num_targets:
                    break
            if len(rows) >= num_targets:
                break
        if len(rows) >= num_targets:
            break
    matrix = np.vstack(rows) if rows else np.zeros((0, window))
    return AttentionHeatmap(benchmark=benchmark, matrix=matrix, window=window)
