"""Command-line experiment runner.

Run any paper experiment directly::

    python -m repro.eval fig11 --length 60000
    python -m repro.eval fig10 --benchmarks mcf,omnetpp
    python -m repro.eval table3
    python -m repro.eval fig14 --no-lstm

Each subcommand prints the same table its benchmark counterpart prints.

Robustness (fig9/fig10/fig11/fig12): ``--store DIR`` persists streams
and labels to a crash-safe artifact store so reruns resume instead of
recomputing; ``--robust`` retries failing benchmarks and degrades to
partial aggregates (with a resume manifest under the store); ``--fail
"mcf,lbm:2"`` injects benchmark failures to drill the machinery.

Performance: ``--jobs N`` fans the per-benchmark work of
fig9/fig10/fig11/fig12/fig13 across N supervised worker processes
(bit-identical results; pair with ``--store`` so streams are filtered
once).  ``--task-timeout`` puts a wall-clock deadline on each task,
``--max-pool-restarts`` bounds pool recycling after worker crashes, and
``--no-degrade`` turns the sequential fallback into a hard error; a
crash journal (JSONL) lands next to the resume manifest.  The
``bench`` subcommand times the filter/replay/matrix stages on both
simulation engines and writes ``BENCH_sim.json`` (``--quick`` for the
CI smoke variant, ``--out`` to choose the path).

Observability: ``--metrics-out PATH`` writes a schema-tagged metrics
snapshot after the run (``-`` prints JSON on stdout, with all human
output moved to stderr; a ``.prom`` suffix selects the Prometheus
textfile format); ``--trace-out PATH`` appends Chrome-compatible span
events to a JSONL trace log; ``--insight-out PATH`` installs a sampled
decision recorder (online accuracy vs a rolling OPTgen, model drift,
worst decisions) and writes its ``repro.obs.insight/v1`` artifact — the
input of ``obs report``.  All carry the run's correlation id
(``--run-id`` to pin it), which is also stamped into the resume
manifest and crash journal.  ``--jobs N`` sweeps report live per-task
progress + ETA on stderr (``--quiet`` silences it).  The ``obs``
subcommand (``obs summarize|diff|chrome|report``) renders and compares
snapshot/trace/insight files — see ``python -m repro.eval obs --help``.

Conformance: the ``conformance`` subcommand (``conformance
fuzz|shrink|corpus``) runs the differential fuzzer that proves the two
simulation engines and the OPTgen oracle agree, minimizes any failing
trace with delta debugging, and replays the checked-in regression
corpus under ``tests/corpus/`` — see ``python -m repro.eval
conformance --help`` and the "Conformance & fuzzing" section of
EXPERIMENTS.md.

Serving: the ``serve`` subcommand (``serve run|load|bench``) runs the
fault-tolerant replacement-policy-as-a-service daemon — sharded policy
workers behind an NDJSON/TCP front end with backpressure, circuit
breakers, crash recovery, and graceful drain — plus its load generator
and chaos benchmark (``BENCH_serve.json``).  See ``python -m repro.eval
serve --help`` and the "Serving & load testing" section of
EXPERIMENTS.md.

Ingestion: the ``ingest`` subcommand (``ingest replay|scan``) streams
external trace files (ChampSim/CRC2 binary, DynamoRIO memtrace text,
request-log CSV; gzip or plain) through the simulator in bounded
memory, with strict/skip/quarantine corrupt-input handling, journaled
quarantine provenance, I/O fault injection, and checkpointed resumable
replay — see ``python -m repro.eval ingest --help`` and the
"Ingestion, quarantine & resumable replay" section of EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..obs import insight as obs_insight
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.progress import ProgressReporter
from ..robust.faults import BenchmarkFaultPlan
from ..robust.retry import DeadlineBudget, RetryPolicy
from ..robust.suite import RobustSuiteRunner
from ..robust.supervise import SuperviseConfig
from .accuracy import offline_accuracy, online_accuracy
from .attention_analysis import attention_cdf, attention_heatmap
from .convergence import convergence_curves
from .cost import model_cost_table
from .missrate import miss_rate_reduction, summarize_by_group
from .multicore import summarize_mixes, weighted_speedup_sweep
from .runner import ArtifactCache, ExperimentConfig
from .semantics import anchor_pc_analysis
from .seqlen import sequence_length_sweep
from .shuffle import shuffle_experiment
from .speedup import single_core_speedup, summarize_speedups
from .tables import format_table


def _benchmarks(args) -> tuple[str, ...] | None:
    return tuple(args.benchmarks.split(",")) if args.benchmarks else None


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "obs":
        # Snapshot tooling is self-contained: don't drag the ML stack in.
        from ..obs.cli import main as obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "conformance":
        # Fuzz/shrink/corpus tooling has its own argument surface.
        from ..conformance.cli import main as conformance_main

        return conformance_main(argv[1:])
    if argv and argv[0] == "serve":
        # The prediction daemon / load generator has its own CLI.
        from ..serve.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "ingest":
        # External-trace ingestion (replay/scan) has its own CLI.
        from ..traces.ingest.cli import main as ingest_main

        return ingest_main(argv[1:])

    parser = argparse.ArgumentParser(prog="python -m repro.eval", description=__doc__)
    parser.add_argument(
        "experiment",
        choices=[
            "fig4", "fig5", "fig6", "fig9", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15", "table3", "table4", "bench",
        ],
    )
    parser.add_argument("--length", type=int, default=60_000, help="trace length")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for per-benchmark experiment stages",
    )
    parser.add_argument(
        "--quick", action="store_true", help="bench: small trace, one repeat"
    )
    parser.add_argument(
        "--out", default="BENCH_sim.json", metavar="PATH",
        help="bench: where to write the timing report",
    )
    parser.add_argument("--benchmarks", default=None, help="comma-separated subset")
    parser.add_argument(
        "--policies", default=None,
        help="fig11: comma-separated contender policies over the LRU "
        "baseline (default: hawkeye,mpppb,ship++,glider; any registry "
        "name works, e.g. frd,mustache,deap)",
    )
    parser.add_argument("--epochs", type=int, default=None, help="LSTM epochs")
    parser.add_argument("--mixes", type=int, default=8, help="fig13 mix count")
    parser.add_argument("--no-lstm", action="store_true", help="skip LSTM curves")
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="disk artifact store: reruns reuse cached streams/labels",
    )
    parser.add_argument(
        "--robust", action="store_true",
        help="retry failing benchmarks and finish the suite with partial results",
    )
    parser.add_argument(
        "--fail", default=None, metavar="SPEC", type=BenchmarkFaultPlan.parse,
        help='inject benchmark failures, e.g. "mcf" (always) or "lbm:2" (twice)',
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3, help="retries per benchmark (--robust)"
    )
    parser.add_argument(
        "--deadline", type=float, default=None, help="suite deadline budget, seconds"
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SEC",
        help="per-task wall-clock deadline in worker pools (--jobs > 1)",
    )
    parser.add_argument(
        "--max-pool-restarts", type=int, default=2, metavar="N",
        help="pool recreations after worker crashes before degrading",
    )
    parser.add_argument(
        "--no-degrade", action="store_true",
        help="raise instead of falling back to sequential after repeated pool breakage",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=0.5, metavar="SEC",
        help="worker heartbeat period in supervised pools (--jobs > 1)",
    )
    parser.add_argument(
        "--heartbeat-grace", type=float, default=30.0, metavar="SEC",
        help="unchanged-heartbeat window before a pool worker is declared wedged",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a metrics snapshot after the run"
        " ('-' for JSON on stdout, '.prom' suffix for Prometheus textfile)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="append Chrome-compatible span events to this JSONL trace log",
    )
    parser.add_argument(
        "--insight-out", default=None, metavar="PATH",
        help="record sampled decision telemetry during the run and write"
        " the repro.obs.insight/v1 artifact here (render with 'obs report')",
    )
    parser.add_argument(
        "--run-id", default=None, metavar="ID",
        help="correlation id stamped into metrics/trace/manifest/journal"
        " (default: freshly minted)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress human-readable tables and progress (machine output only)",
    )
    args = parser.parse_args(argv)

    # --- observability wiring -------------------------------------------
    # One run_id correlates the metrics snapshot, the trace log, the
    # resume manifest, and the crash journal.
    if args.run_id:
        obs_trace.set_run_id(args.run_id)
    tracer = None
    if args.metrics_out or args.trace_out or args.insight_out:
        obs_trace.current_run_id(create=True)
    if args.metrics_out:
        obs_metrics.enable()
    if args.trace_out:
        tracer = obs_trace.install(obs_trace.TraceLog(args.trace_out))
    recorder = None

    # Human-readable output: stdout normally, stderr when stdout is
    # reserved for the machine-parseable snapshot, nowhere under --quiet.
    human_stream = sys.stderr if args.metrics_out == "-" else sys.stdout

    def emit(text: str = "") -> None:
        if not args.quiet:
            print(text, file=human_stream)

    def reporter(total: int, label: str) -> ProgressReporter | None:
        if args.jobs > 1 and not args.quiet:
            return ProgressReporter(total, label=label)
        return None

    config = ExperimentConfig(
        trace_length=args.length,
        lstm_embedding=32,
        lstm_hidden=32,
        lstm_history=20,
        lstm_epochs=args.epochs or 6,
    )
    cache = ArtifactCache(config, store=args.store)
    subset = _benchmarks(args)
    if args.insight_out:
        # The recorder must carry THIS run's LLC geometry (the scaled
        # hierarchy follows --length): engines check matches() before
        # reporting, so a default-shaped recorder would record nothing.
        recorder = obs_insight.enable(config.hierarchy())

    supervise = SuperviseConfig(
        task_timeout=args.task_timeout,
        max_pool_restarts=args.max_pool_restarts,
        degrade=not args.no_degrade,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_grace=args.heartbeat_grace,
    )
    journal = None
    if args.store:
        journal = Path(args.store) / f"journal-{args.experiment}.jsonl"
    repro_command = (
        f"PYTHONPATH=src python -m repro.eval {args.experiment}"
        f" --length {args.length} --benchmarks {{task}}"
    )

    runner = None
    if args.robust or args.fail:
        manifest = None
        if args.store:
            manifest = Path(args.store) / f"manifest-{args.experiment}.json"
        runner = RobustSuiteRunner(
            retry_policy=RetryPolicy(max_attempts=args.max_attempts),
            manifest_path=manifest,
            budget=DeadlineBudget(args.deadline) if args.deadline else None,
            fault_plan=args.fail,
            supervise=supervise,
            journal_path=journal,
            repro_command=repro_command,
        )

    with obs_trace.span(
        "eval.experiment", experiment=args.experiment, jobs=args.jobs,
        length=args.length,
    ):
        exit_code = _dispatch(
            args, config, cache, subset, supervise, journal, runner, emit, reporter
        )

    if recorder is not None:
        obs_insight.disable()
        recorder.publish()  # mirror gauges into the snapshot, if enabled
        obs_insight.save_artifact(args.insight_out, recorder.to_artifact())
        emit(f"insight artifact -> {args.insight_out}")
    if args.metrics_out:
        snapshot = obs_metrics.registry().snapshot(
            run_id=obs_trace.current_run_id(),
            meta={
                "experiment": args.experiment,
                "trace_length": args.length,
                "jobs": args.jobs,
            }
        )
        if args.metrics_out == "-":
            import json

            print(json.dumps(snapshot, indent=2, sort_keys=True))
        else:
            obs_metrics.save_snapshot(args.metrics_out, snapshot)
            emit(f"metrics snapshot -> {args.metrics_out}")
    if tracer is not None:
        obs_trace.uninstall()
        tracer.close()
        emit(f"trace log -> {args.trace_out}")
    return exit_code


def _dispatch(args, config, cache, subset, supervise, journal, runner, emit, reporter):
    """Run one experiment subcommand and emit its human-readable tables."""
    if args.experiment == "fig4":
        rows = attention_cdf(config, cache=cache)
        emit(format_table([r.as_row() for r in rows], "Figure 4"))
    elif args.experiment == "fig5":
        heatmap = attention_heatmap(config, cache=cache)
        emit(f"targets={heatmap.matrix.shape[0]} sparsity@0.3={heatmap.sparsity(0.3):.2f}")
    elif args.experiment == "fig6":
        rows = shuffle_experiment(config, benchmarks=subset, cache=cache)
        emit(format_table([r.as_row() for r in rows], "Figure 6"))
    elif args.experiment == "fig9":
        names = subset or config.offline_benchmarks
        rows = offline_accuracy(
            config, benchmarks=subset, cache=cache, runner=runner, jobs=args.jobs,
            supervise=supervise, journal=journal,
            progress=reporter(len(names), "benchmarks"),
        )
        emit(format_table([r.as_row() for r in rows], "Figure 9"))
    elif args.experiment == "fig10":
        names = subset or config.suite
        rows = online_accuracy(
            config, benchmarks=subset, cache=cache, runner=runner, jobs=args.jobs,
            supervise=supervise, journal=journal,
            progress=reporter(len(names), "benchmarks"),
        )
        emit(format_table([r.as_row() for r in rows], "Figure 10"))
    elif args.experiment == "fig11":
        names = subset or config.suite
        contender_kwargs = (
            {"policies": tuple(args.policies.split(","))} if args.policies else {}
        )
        results = miss_rate_reduction(
            config, benchmarks=subset, include_belady=True, cache=cache,
            runner=runner, jobs=args.jobs, supervise=supervise, journal=journal,
            progress=reporter(len(names), "benchmarks"),
            **contender_kwargs,
        )
        emit(format_table([r.as_row() for r in results], "Figure 11"))
        emit(format_table(summarize_by_group(results)))
    elif args.experiment == "fig12":
        names = subset or config.suite
        results = single_core_speedup(
            config, benchmarks=subset, cache=cache, runner=runner, jobs=args.jobs,
            supervise=supervise, journal=journal,
            progress=reporter(len(names), "benchmarks"),
        )
        emit(format_table([r.as_row() for r in results], "Figure 12"))
        emit(format_table(summarize_speedups(results)))
    elif args.experiment == "fig13":
        results = weighted_speedup_sweep(
            config, num_mixes=args.mixes, cache=cache, jobs=args.jobs,
            supervise=supervise, journal=journal,
            progress=reporter(args.mixes, "mixes"),
        )
        emit(format_table([r.as_row() for r in results], "Figure 13"))
        emit(str(summarize_mixes(results)))
    elif args.experiment == "fig14":
        curves = sequence_length_sweep(
            config, benchmarks=subset, cache=cache, include_lstm=not args.no_lstm
        )
        emit(format_table(curves.rows(), "Figure 14"))
    elif args.experiment == "fig15":
        curves = convergence_curves(
            config, benchmarks=subset, cache=cache, include_lstm=not args.no_lstm
        )
        emit(format_table(curves.rows(), "Figure 15"))
    elif args.experiment == "table3":
        rows = model_cost_table()
        emit(format_table([r.as_row() for r in rows], "Table 3"))
    elif args.experiment == "table4":
        rows = anchor_pc_analysis(config, cache=cache)
        emit(format_table([r.as_row() for r in rows], "Table 4"))
    elif args.experiment == "bench":
        from ..perf.bench import run_bench

        report = run_bench(
            jobs=max(2, args.jobs), quick=args.quick, out=args.out
        )
        emit(f"bench report -> {args.out}")
        emit(f"filter speedup: {report['filter']['speedup']:.1f}x")
        for policy, entry in report["replay"].items():
            emit(f"replay {policy}: {entry['speedup']:.1f}x")
        emit(
            f"matrix jobs={report['matrix']['jobs']}: "
            f"{report['matrix']['speedup']:.2f}x vs sequential"
        )

    if runner is not None and runner.last_report is not None:
        report = runner.last_report
        emit(f"suite: {report.summary()}")
        if report.failures:
            emit(format_table([f.as_row() for f in report.failures], "Failures"))
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
