"""Command-line experiment runner.

Run any paper experiment directly::

    python -m repro.eval fig11 --length 60000
    python -m repro.eval fig10 --benchmarks mcf,omnetpp
    python -m repro.eval table3
    python -m repro.eval fig14 --no-lstm

Each subcommand prints the same table its benchmark counterpart prints.

Robustness (fig9/fig10/fig11/fig12): ``--store DIR`` persists streams
and labels to a crash-safe artifact store so reruns resume instead of
recomputing; ``--robust`` retries failing benchmarks and degrades to
partial aggregates (with a resume manifest under the store); ``--fail
"mcf,lbm:2"`` injects benchmark failures to drill the machinery.

Performance: ``--jobs N`` fans the per-benchmark work of
fig9/fig10/fig11/fig12/fig13 across N supervised worker processes
(bit-identical results; pair with ``--store`` so streams are filtered
once).  ``--task-timeout`` puts a wall-clock deadline on each task,
``--max-pool-restarts`` bounds pool recycling after worker crashes, and
``--no-degrade`` turns the sequential fallback into a hard error; a
crash journal (JSONL) lands next to the resume manifest.  The
``bench`` subcommand times the filter/replay/matrix stages on both
simulation engines and writes ``BENCH_sim.json`` (``--quick`` for the
CI smoke variant, ``--out`` to choose the path).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from ..robust.faults import BenchmarkFaultPlan
from ..robust.retry import DeadlineBudget, RetryPolicy
from ..robust.suite import RobustSuiteRunner
from ..robust.supervise import SuperviseConfig
from .accuracy import offline_accuracy, online_accuracy
from .attention_analysis import attention_cdf, attention_heatmap
from .convergence import convergence_curves
from .cost import model_cost_table
from .missrate import miss_rate_reduction, summarize_by_group
from .multicore import summarize_mixes, weighted_speedup_sweep
from .runner import ArtifactCache, ExperimentConfig
from .semantics import anchor_pc_analysis
from .seqlen import sequence_length_sweep
from .shuffle import shuffle_experiment
from .speedup import single_core_speedup, summarize_speedups
from .tables import format_table


def _benchmarks(args) -> tuple[str, ...] | None:
    return tuple(args.benchmarks.split(",")) if args.benchmarks else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.eval", description=__doc__)
    parser.add_argument(
        "experiment",
        choices=[
            "fig4", "fig5", "fig6", "fig9", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15", "table3", "table4", "bench",
        ],
    )
    parser.add_argument("--length", type=int, default=60_000, help="trace length")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for per-benchmark experiment stages",
    )
    parser.add_argument(
        "--quick", action="store_true", help="bench: small trace, one repeat"
    )
    parser.add_argument(
        "--out", default="BENCH_sim.json", metavar="PATH",
        help="bench: where to write the timing report",
    )
    parser.add_argument("--benchmarks", default=None, help="comma-separated subset")
    parser.add_argument("--epochs", type=int, default=None, help="LSTM epochs")
    parser.add_argument("--mixes", type=int, default=8, help="fig13 mix count")
    parser.add_argument("--no-lstm", action="store_true", help="skip LSTM curves")
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="disk artifact store: reruns reuse cached streams/labels",
    )
    parser.add_argument(
        "--robust", action="store_true",
        help="retry failing benchmarks and finish the suite with partial results",
    )
    parser.add_argument(
        "--fail", default=None, metavar="SPEC", type=BenchmarkFaultPlan.parse,
        help='inject benchmark failures, e.g. "mcf" (always) or "lbm:2" (twice)',
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3, help="retries per benchmark (--robust)"
    )
    parser.add_argument(
        "--deadline", type=float, default=None, help="suite deadline budget, seconds"
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SEC",
        help="per-task wall-clock deadline in worker pools (--jobs > 1)",
    )
    parser.add_argument(
        "--max-pool-restarts", type=int, default=2, metavar="N",
        help="pool recreations after worker crashes before degrading",
    )
    parser.add_argument(
        "--no-degrade", action="store_true",
        help="raise instead of falling back to sequential after repeated pool breakage",
    )
    args = parser.parse_args(argv)

    config = ExperimentConfig(
        trace_length=args.length,
        lstm_embedding=32,
        lstm_hidden=32,
        lstm_history=20,
        lstm_epochs=args.epochs or 6,
    )
    cache = ArtifactCache(config, store=args.store)
    subset = _benchmarks(args)

    supervise = SuperviseConfig(
        task_timeout=args.task_timeout,
        max_pool_restarts=args.max_pool_restarts,
        degrade=not args.no_degrade,
    )
    journal = None
    if args.store:
        journal = Path(args.store) / f"journal-{args.experiment}.jsonl"
    repro_command = (
        f"PYTHONPATH=src python -m repro.eval {args.experiment}"
        f" --length {args.length} --benchmarks {{task}}"
    )

    runner = None
    if args.robust or args.fail:
        manifest = None
        if args.store:
            manifest = Path(args.store) / f"manifest-{args.experiment}.json"
        runner = RobustSuiteRunner(
            retry_policy=RetryPolicy(max_attempts=args.max_attempts),
            manifest_path=manifest,
            budget=DeadlineBudget(args.deadline) if args.deadline else None,
            fault_plan=args.fail,
            supervise=supervise,
            journal_path=journal,
            repro_command=repro_command,
        )

    if args.experiment == "fig4":
        rows = attention_cdf(config, cache=cache)
        print(format_table([r.as_row() for r in rows], "Figure 4"))
    elif args.experiment == "fig5":
        heatmap = attention_heatmap(config, cache=cache)
        print(f"targets={heatmap.matrix.shape[0]} sparsity@0.3={heatmap.sparsity(0.3):.2f}")
    elif args.experiment == "fig6":
        rows = shuffle_experiment(config, benchmarks=subset, cache=cache)
        print(format_table([r.as_row() for r in rows], "Figure 6"))
    elif args.experiment == "fig9":
        rows = offline_accuracy(
            config, benchmarks=subset, cache=cache, runner=runner, jobs=args.jobs,
            supervise=supervise, journal=journal,
        )
        print(format_table([r.as_row() for r in rows], "Figure 9"))
    elif args.experiment == "fig10":
        rows = online_accuracy(
            config, benchmarks=subset, cache=cache, runner=runner, jobs=args.jobs,
            supervise=supervise, journal=journal,
        )
        print(format_table([r.as_row() for r in rows], "Figure 10"))
    elif args.experiment == "fig11":
        results = miss_rate_reduction(
            config, benchmarks=subset, include_belady=True, cache=cache,
            runner=runner, jobs=args.jobs, supervise=supervise, journal=journal,
        )
        print(format_table([r.as_row() for r in results], "Figure 11"))
        print(format_table(summarize_by_group(results)))
    elif args.experiment == "fig12":
        results = single_core_speedup(
            config, benchmarks=subset, cache=cache, runner=runner, jobs=args.jobs,
            supervise=supervise, journal=journal,
        )
        print(format_table([r.as_row() for r in results], "Figure 12"))
        print(format_table(summarize_speedups(results)))
    elif args.experiment == "fig13":
        results = weighted_speedup_sweep(
            config, num_mixes=args.mixes, cache=cache, jobs=args.jobs,
            supervise=supervise, journal=journal,
        )
        print(format_table([r.as_row() for r in results], "Figure 13"))
        print(summarize_mixes(results))
    elif args.experiment == "fig14":
        curves = sequence_length_sweep(
            config, benchmarks=subset, cache=cache, include_lstm=not args.no_lstm
        )
        print(format_table(curves.rows(), "Figure 14"))
    elif args.experiment == "fig15":
        curves = convergence_curves(
            config, benchmarks=subset, cache=cache, include_lstm=not args.no_lstm
        )
        print(format_table(curves.rows(), "Figure 15"))
    elif args.experiment == "table3":
        rows = model_cost_table()
        print(format_table([r.as_row() for r in rows], "Table 3"))
    elif args.experiment == "table4":
        rows = anchor_pc_analysis(config, cache=cache)
        print(format_table([r.as_row() for r in rows], "Table 4"))
    elif args.experiment == "bench":
        from ..perf.bench import run_bench

        report = run_bench(
            jobs=max(2, args.jobs), quick=args.quick, out=args.out
        )
        print(f"bench report -> {args.out}")
        print(f"filter speedup: {report['filter']['speedup']:.1f}x")
        for policy, entry in report["replay"].items():
            print(f"replay {policy}: {entry['speedup']:.1f}x")
        print(
            f"matrix jobs={report['matrix']['jobs']}: "
            f"{report['matrix']['speedup']:.2f}x vs sequential"
        )

    if runner is not None and runner.last_report is not None:
        report = runner.last_report
        print(f"suite: {report.summary()}")
        if report.failures:
            print(format_table([f.as_row() for f in report.failures], "Failures"))
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
