"""Figure 12: single-core speedup over LRU (full timing simulation)."""

from __future__ import annotations

import functools
from dataclasses import asdict, dataclass

from ..cpu.system import SingleCoreSystem
from ..perf.parallel import parallel_map
from ..policies.registry import make_policy
from ..robust.suite import RobustSuiteRunner
from ..traces.suite import suite_group
from .missrate import CONTENDERS
from .runner import DEFAULT, ArtifactCache, ExperimentConfig
from .tables import arithmetic_mean, geometric_mean


@dataclass
class SpeedupResult:
    """Per-benchmark IPC for every policy, with LRU as the baseline."""

    benchmark: str
    group: str
    lru_ipc: float
    ipcs: dict[str, float]

    def speedup_percent(self, policy: str) -> float:
        if self.lru_ipc <= 0:
            return 0.0
        return 100.0 * (self.ipcs[policy] / self.lru_ipc - 1.0)

    def as_row(self) -> dict:
        row = {"benchmark": self.benchmark, "group": self.group}
        for policy in self.ipcs:
            row[policy] = self.speedup_percent(policy)
        return row


def _speedup_benchmark(
    benchmark: str,
    *,
    config: ExperimentConfig,
    policies: tuple[str, ...],
) -> SpeedupResult:
    """One Figure 12 row (module-level so it pickles into pool workers;
    timing runs consume the raw trace, so no artifact cache is needed)."""
    cache = ArtifactCache(config)
    trace = cache.trace(benchmark)
    lru = SingleCoreSystem(config.hierarchy(), make_policy("lru")).run(trace)
    ipcs: dict[str, float] = {}
    for policy in policies:
        result = SingleCoreSystem(config.hierarchy(), make_policy(policy)).run(trace)
        ipcs[policy] = result.ipc
    try:
        group = suite_group(benchmark)
    except KeyError:
        group = "other"
    return SpeedupResult(benchmark=benchmark, group=group, lru_ipc=lru.ipc, ipcs=ipcs)


def single_core_speedup(
    config: ExperimentConfig = DEFAULT,
    benchmarks: tuple[str, ...] | None = None,
    policies: tuple[str, ...] = CONTENDERS,
    cache: ArtifactCache | None = None,
    runner: RobustSuiteRunner | None = None,
    jobs: int = 1,
    supervise=None,
    journal=None,
    progress=None,
) -> list[SpeedupResult]:
    """Reproduce Figure 12: full-hierarchy timing runs per policy.

    With a ``runner``, per-benchmark failures degrade gracefully (see
    :func:`repro.eval.missrate.miss_rate_reduction`).  With ``jobs > 1``
    the benchmarks fan out across a supervised process pool with
    bit-identical results (traces are regenerated deterministically per
    worker).
    """
    benchmarks = benchmarks or config.suite
    compute = functools.partial(_speedup_benchmark, config=config, policies=policies)
    if runner is None:
        return parallel_map(
            compute, benchmarks, jobs=jobs, supervise=supervise, journal=journal,
            task_ids=list(benchmarks), progress=progress,
        )
    if progress is not None:
        runner.progress = progress
    report = runner.run(
        benchmarks,
        compute,
        serialize=asdict,
        deserialize=lambda payload: SpeedupResult(**payload),
        jobs=jobs,
    )
    return report.results(benchmarks)


def summarize_speedups(results: list[SpeedupResult]) -> list[dict]:
    """Group-average speedup rows (SPEC17 / SPEC06 / GAP / All)."""
    policies = list(results[0].ipcs) if results else []
    rows: list[dict] = []
    groups = sorted({r.group for r in results}) + ["ALL"]
    for group in groups:
        member = [r for r in results if group == "ALL" or r.group == group]
        if not member:
            continue
        row: dict = {"group": group, "n": len(member)}
        for policy in policies:
            # Geometric mean of the ratios, reported as a percentage gain.
            ratios = [1.0 + r.speedup_percent(policy) / 100.0 for r in member]
            row[policy] = 100.0 * (geometric_mean(ratios) - 1.0)
        rows.append(row)
    return rows
