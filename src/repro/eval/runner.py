"""Shared experiment configuration and cached intermediate artefacts.

Every table/figure experiment draws from the same pipeline:

    trace -> (L1/L2 filter) -> LLC stream -> {policy replay | Belady labels}

Streams and labelled traces are cached per (benchmark, config) so a full
benchmark run touches each expensive stage once.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..cache.config import HierarchyConfig, scaled_hierarchy
from ..cache.hierarchy import LLCStream, filter_to_llc_stream
from ..ml.dataset import LabelledTrace, label_trace
from ..ml.model import LSTMConfig
from ..traces.suite import FULL_SUITE, OFFLINE_BENCHMARKS, get_trace
from ..traces.trace import Trace


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments (laptop-scale defaults).

    The paper runs 1B-instruction SimPoints on a full-size hierarchy; we
    run ~10^5-access synthetic traces on the scaled hierarchy.  All
    relative comparisons (the shape of each figure) are preserved; see
    EXPERIMENTS.md for the absolute-number deltas.
    """

    trace_length: int = 100_000
    seed: int = 0
    # Table 1 scaled 32x down (64 KB LLC): small enough that every
    # capacity-driven pattern in a ~10^5-access trace cycles many times,
    # giving MIN real headroom over LRU (the regime the paper studies).
    hierarchy_scale: int = 32
    offline_benchmarks: tuple[str, ...] = OFFLINE_BENCHMARKS
    suite: tuple[str, ...] = FULL_SUITE
    # Offline-model knobs (scaled from Table 5 for runtime; the paper's
    # values are embedding=hidden=128, 15+ epochs).
    lstm_embedding: int = 32
    lstm_hidden: int = 32
    lstm_history: int = 30
    lstm_epochs: int = 8
    lstm_batch: int = 32

    def hierarchy(self, cores: int = 1) -> HierarchyConfig:
        return scaled_hierarchy(cores=cores, scale=self.hierarchy_scale)

    def lstm_config(self, vocab_size: int, **overrides) -> LSTMConfig:
        values = dict(
            vocab_size=vocab_size,
            embedding_dim=self.lstm_embedding,
            hidden_dim=self.lstm_hidden,
            history=self.lstm_history,
            batch_size=self.lstm_batch,
            seed=self.seed,
        )
        values.update(overrides)
        return LSTMConfig(**values)

    def with_length(self, trace_length: int) -> "ExperimentConfig":
        return replace(self, trace_length=trace_length)


#: A fast configuration for unit tests and quick benchmark smoke runs.
QUICK = ExperimentConfig(
    trace_length=30_000,
    lstm_embedding=24,
    lstm_hidden=24,
    lstm_history=20,
    lstm_epochs=5,
)

#: The default used by the `benchmarks/` harness.
DEFAULT = ExperimentConfig()


class ArtifactCache:
    """Per-process cache of traces, LLC streams, and Belady labels."""

    def __init__(self, config: ExperimentConfig = DEFAULT) -> None:
        self.config = config
        self._streams: dict[str, LLCStream] = {}
        self._labelled: dict[str, LabelledTrace] = {}

    def trace(self, benchmark: str) -> Trace:
        return get_trace(
            benchmark,
            length=self.config.trace_length,
            llc_lines=self.config.hierarchy().llc.num_lines,
            seed=self.config.seed,
        )

    def llc_stream(self, benchmark: str) -> LLCStream:
        if benchmark not in self._streams:
            self._streams[benchmark] = filter_to_llc_stream(
                self.trace(benchmark), self.config.hierarchy()
            )
        return self._streams[benchmark]

    def labelled(self, benchmark: str) -> LabelledTrace:
        """Belady-labelled LLC stream of a benchmark (offline training data)."""
        if benchmark not in self._labelled:
            stream = self.llc_stream(benchmark)
            hierarchy = self.config.hierarchy()
            llc_trace = stream.to_trace()
            llc_trace.metadata.update(stream.metadata)
            labelled = label_trace(
                llc_trace, hierarchy.llc.num_sets, hierarchy.llc.associativity
            )
            labelled.metadata.update(stream.metadata)
            self._labelled[benchmark] = labelled
        return self._labelled[benchmark]

    def clear(self) -> None:
        self._streams.clear()
        self._labelled.clear()
