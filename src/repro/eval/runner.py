"""Shared experiment configuration and cached intermediate artefacts.

Every table/figure experiment draws from the same pipeline:

    trace -> (L1/L2 filter) -> LLC stream -> {policy replay | Belady labels}

Streams and labelled traces are cached per (benchmark, config) so a full
benchmark run touches each expensive stage once.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path

import numpy as np

from ..cache.config import HierarchyConfig, scaled_hierarchy
from ..cache.hierarchy import LLCStream, filter_to_llc_stream
from ..ml.dataset import LabelledTrace, label_trace
from ..ml.model import LSTMConfig
from ..robust.store import ArtifactStore
from ..traces.suite import FULL_SUITE, OFFLINE_BENCHMARKS, get_trace
from ..traces.trace import Trace


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments (laptop-scale defaults).

    The paper runs 1B-instruction SimPoints on a full-size hierarchy; we
    run ~10^5-access synthetic traces on the scaled hierarchy.  All
    relative comparisons (the shape of each figure) are preserved; see
    EXPERIMENTS.md for the absolute-number deltas.
    """

    trace_length: int = 100_000
    seed: int = 0
    # Table 1 scaled 32x down (64 KB LLC): small enough that every
    # capacity-driven pattern in a ~10^5-access trace cycles many times,
    # giving MIN real headroom over LRU (the regime the paper studies).
    hierarchy_scale: int = 32
    offline_benchmarks: tuple[str, ...] = OFFLINE_BENCHMARKS
    suite: tuple[str, ...] = FULL_SUITE
    # Offline-model knobs (scaled from Table 5 for runtime; the paper's
    # values are embedding=hidden=128, 15+ epochs).
    lstm_embedding: int = 32
    lstm_hidden: int = 32
    lstm_history: int = 30
    lstm_epochs: int = 8
    lstm_batch: int = 32

    def hierarchy(self, cores: int = 1) -> HierarchyConfig:
        return scaled_hierarchy(cores=cores, scale=self.hierarchy_scale)

    def lstm_config(self, vocab_size: int, **overrides) -> LSTMConfig:
        values = dict(
            vocab_size=vocab_size,
            embedding_dim=self.lstm_embedding,
            hidden_dim=self.lstm_hidden,
            history=self.lstm_history,
            batch_size=self.lstm_batch,
            seed=self.seed,
        )
        values.update(overrides)
        return LSTMConfig(**values)

    def with_length(self, trace_length: int) -> "ExperimentConfig":
        return replace(self, trace_length=trace_length)

    def digest(self) -> str:
        """Stable fingerprint of every knob, for artifact-store keys.

        Two configs share a digest iff they produce identical traces,
        streams, and labels — so a disk-cached artifact is only ever
        reused under the exact configuration that built it.
        """
        payload = json.dumps(asdict(self), sort_keys=True, default=list)
        return hashlib.sha256(payload.encode()).hexdigest()[:12]


#: A fast configuration for unit tests and quick benchmark smoke runs.
QUICK = ExperimentConfig(
    trace_length=30_000,
    lstm_embedding=24,
    lstm_hidden=24,
    lstm_history=20,
    lstm_epochs=5,
)

#: The default used by the `benchmarks/` harness.
DEFAULT = ExperimentConfig()


# -- artifact (de)serialisation for the disk store ---------------------------


def _stream_to_arrays(stream: LLCStream) -> tuple[dict, dict]:
    arrays = {
        "pcs": stream.pcs,
        "addresses": stream.addresses,
        "kinds": stream.kinds,
        "cores": stream.cores,
    }
    meta = {
        "name": stream.name,
        "line_size": stream.line_size,
        "source_accesses": stream.source_accesses,
        "source_instructions": stream.source_instructions,
        "l1_hits": stream.l1_hits,
        "l2_hits": stream.l2_hits,
        "metadata": stream.metadata,
    }
    return arrays, meta


def _stream_from_arrays(arrays: dict, meta: dict) -> LLCStream:
    return LLCStream(
        name=meta["name"],
        pcs=arrays["pcs"],
        addresses=arrays["addresses"],
        kinds=arrays["kinds"],
        cores=arrays["cores"],
        line_size=int(meta["line_size"]),
        source_accesses=int(meta["source_accesses"]),
        source_instructions=int(meta["source_instructions"]),
        l1_hits=int(meta["l1_hits"]),
        l2_hits=int(meta["l2_hits"]),
        metadata=meta.get("metadata", {}),
    )


def _labelled_to_arrays(labelled: LabelledTrace) -> tuple[dict, dict]:
    arrays = {
        "pcs": labelled.pcs,
        "labels": labelled.labels,
        "vocabulary": labelled.vocabulary,
    }
    return arrays, {"name": labelled.name, "metadata": labelled.metadata}


def _labelled_from_arrays(arrays: dict, meta: dict) -> LabelledTrace:
    return LabelledTrace(
        name=meta["name"],
        pcs=arrays["pcs"].astype(np.int32),
        labels=arrays["labels"].astype(bool),
        vocabulary=arrays["vocabulary"],
        metadata=meta.get("metadata", {}),
    )


class ArtifactCache:
    """Two-tier cache of traces, LLC streams, and Belady labels.

    Tier 1 is the original per-process dict; tier 2 (optional) is a
    crash-safe, checksummed :class:`~repro.robust.store.ArtifactStore`
    on disk, keyed by ``(benchmark, stage, config.digest())``.  With a
    store attached, a rerun — or a resumed run after a crash — reloads
    streams and labels instead of recomputing them; corrupt entries are
    quarantined by the store and regenerated transparently here.
    """

    def __init__(
        self,
        config: ExperimentConfig = DEFAULT,
        store: ArtifactStore | str | None = None,
    ) -> None:
        self.config = config
        self.store = ArtifactStore(store) if isinstance(store, (str, Path)) else store
        self._streams: dict[str, LLCStream] = {}
        self._labelled: dict[str, LabelledTrace] = {}

    def trace(self, benchmark: str) -> Trace:
        return get_trace(
            benchmark,
            length=self.config.trace_length,
            llc_lines=self.config.hierarchy().llc.num_lines,
            seed=self.config.seed,
        )

    def llc_stream(self, benchmark: str) -> LLCStream:
        if benchmark in self._streams:
            return self._streams[benchmark]
        digest = self.config.digest()
        if self.store is not None:
            cached = self.store.get(benchmark, "llc_stream", digest)
            if cached is not None:
                self._streams[benchmark] = _stream_from_arrays(*cached)
                return self._streams[benchmark]
            # Cross-process dedup: when another worker is already filtering
            # this stream, wait for its artifact instead of recomputing.
            with self.store.single_flight(benchmark, "llc_stream", digest) as owner:
                if not owner:
                    cached = self.store.get(benchmark, "llc_stream", digest)
                    if cached is not None:
                        self._streams[benchmark] = _stream_from_arrays(*cached)
                        return self._streams[benchmark]
                stream = filter_to_llc_stream(
                    self.trace(benchmark), self.config.hierarchy()
                )
                arrays, meta = _stream_to_arrays(stream)
                self.store.put(benchmark, "llc_stream", digest, arrays, meta)
            self._streams[benchmark] = stream
            return stream
        stream = filter_to_llc_stream(self.trace(benchmark), self.config.hierarchy())
        self._streams[benchmark] = stream
        return stream

    def labelled(self, benchmark: str) -> LabelledTrace:
        """Belady-labelled LLC stream of a benchmark (offline training data)."""
        if benchmark in self._labelled:
            return self._labelled[benchmark]
        digest = self.config.digest()
        if self.store is not None:
            cached = self.store.get(benchmark, "labelled", digest)
            if cached is not None:
                self._labelled[benchmark] = _labelled_from_arrays(*cached)
                return self._labelled[benchmark]
            with self.store.single_flight(benchmark, "labelled", digest) as owner:
                if not owner:
                    cached = self.store.get(benchmark, "labelled", digest)
                    if cached is not None:
                        self._labelled[benchmark] = _labelled_from_arrays(*cached)
                        return self._labelled[benchmark]
                labelled = self._label(benchmark)
                arrays, meta = _labelled_to_arrays(labelled)
                self.store.put(benchmark, "labelled", digest, arrays, meta)
            self._labelled[benchmark] = labelled
            return labelled
        labelled = self._label(benchmark)
        self._labelled[benchmark] = labelled
        return labelled

    def _label(self, benchmark: str) -> LabelledTrace:
        stream = self.llc_stream(benchmark)
        hierarchy = self.config.hierarchy()
        llc_trace = stream.to_trace()
        # Deep-copy the stream metadata: merging shared references here
        # would alias mutable values (arrays, lists) between the cached
        # stream and every labelled trace derived from it, so mutating
        # one artifact's metadata would silently corrupt the others.
        llc_trace.metadata.update(copy.deepcopy(stream.metadata))
        labelled = label_trace(
            llc_trace, hierarchy.llc.num_sets, hierarchy.llc.associativity
        )
        labelled.metadata.update(copy.deepcopy(stream.metadata))
        return labelled

    def clear(self) -> None:
        """Drop the in-memory tier (the disk store, if any, is kept)."""
        self._streams.clear()
        self._labelled.clear()
