"""Figure 13: 4-core weighted speedup over LRU across workload mixes.

Methodology (Section 5.1, "Multi-Core Workloads"): for each mix, every
benchmark's IPC is measured (a) sharing the LLC with its three
co-runners and (b) running alone on the same cache, and the weighted
IPC ``sum_i IPC_shared_i / IPC_single_i`` is normalised against the same
quantity under LRU.  The paper plots 100 mixes as an S-curve; the mix
count here is configurable (benchmarks default to a reduced count).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from ..cpu.system import MultiCoreSystem, SingleCoreSystem
from ..perf.parallel import parallel_map
from ..policies.registry import make_policy
from ..traces.mixes import WorkloadMix, make_mixes
from .missrate import CONTENDERS
from .runner import DEFAULT, ArtifactCache, ExperimentConfig
from .tables import arithmetic_mean


@dataclass
class MixResult:
    """Weighted speedups (percent over LRU) for one mix."""

    mix: WorkloadMix
    weighted_speedup_percent: dict[str, float]

    def as_row(self) -> dict:
        row = {"mix": self.mix.name}
        row.update(self.weighted_speedup_percent)
        return row


def _make_mix_policy(policy_name: str, cores: int):
    """Build a policy sized for a ``cores``-way shared LLC.

    The OPTgen-trained policies observe per-set access interleavings
    from all cores, so their occupancy window (a per-set time span) must
    scale with the core count — exactly as their hardware budget scales
    with the shared LLC's size.
    """
    if policy_name in ("hawkeye", "glider") and cores > 1:
        return make_policy(policy_name, window_factor=8 * cores)
    return make_policy(policy_name)


def _weighted_ipc(
    config: ExperimentConfig,
    cache: ArtifactCache,
    mix: WorkloadMix,
    policy_name: str,
    quota: int,
    single_ipcs: dict[str, float],
) -> float:
    traces = [cache.trace(b) for b in mix.benchmarks]
    cores = len(traces)
    system = MultiCoreSystem(
        traces, config.hierarchy(cores=cores), _make_mix_policy(policy_name, cores)
    )
    result = system.run(quota_accesses=quota)
    weighted = 0.0
    for core, benchmark in enumerate(mix.benchmarks):
        weighted += result.per_core_ipc[core] / max(1e-9, single_ipcs[benchmark])
    return weighted


def _single_ipc(
    benchmark: str, *, config: ExperimentConfig, cores: int
) -> tuple[str, float]:
    """One benchmark alone on the shared-size cache (pool-worker safe)."""
    cache = ArtifactCache(config)
    system = SingleCoreSystem(config.hierarchy(cores=cores), make_policy("lru"))
    return benchmark, system.run(cache.trace(benchmark)).ipc


def _mix_task(
    mix: WorkloadMix,
    *,
    config: ExperimentConfig,
    policies: tuple[str, ...],
    quota: int,
    single_ipcs: dict[str, float],
) -> MixResult:
    """One S-curve point: a mix under LRU and every contender."""
    cache = ArtifactCache(config)
    lru_weighted = _weighted_ipc(config, cache, mix, "lru", quota, single_ipcs)
    speedups: dict[str, float] = {}
    for policy in policies:
        weighted = _weighted_ipc(config, cache, mix, policy, quota, single_ipcs)
        speedups[policy] = 100.0 * (weighted / max(1e-9, lru_weighted) - 1.0)
    return MixResult(mix=mix, weighted_speedup_percent=speedups)


def weighted_speedup_sweep(
    config: ExperimentConfig = DEFAULT,
    num_mixes: int = 12,
    cores: int = 4,
    policies: tuple[str, ...] = CONTENDERS,
    quota: int | None = None,
    cache: ArtifactCache | None = None,
    seed: int = 42,
    jobs: int = 1,
    supervise=None,
    journal=None,
    progress=None,
) -> list[MixResult]:
    """Reproduce Figure 13 (sorted per-policy, it forms the S-curves).

    Mixes are mutually independent once the single-core reference IPCs
    exist, so with ``jobs > 1`` both the reference runs and the mixes
    fan out across a supervised process pool with bit-identical results.
    """
    mixes = make_mixes(num_mixes, cores=cores, seed=seed)
    quota = quota or max(10_000, config.trace_length // 4)
    # Single-core reference IPCs: each benchmark alone on the shared cache
    # (paper: "its IPC when executing in isolation on the same cache").
    needed = sorted({b for mix in mixes for b in mix.benchmarks})
    single_ipcs = dict(
        parallel_map(
            functools.partial(_single_ipc, config=config, cores=cores),
            needed,
            jobs=jobs,
            supervise=supervise,
            journal=journal,
            task_ids=list(needed),
        )
    )
    return parallel_map(
        functools.partial(
            _mix_task,
            config=config,
            policies=policies,
            quota=quota,
            single_ipcs=single_ipcs,
        ),
        mixes,
        jobs=jobs,
        supervise=supervise,
        journal=journal,
        task_ids=[mix.name for mix in mixes],
        progress=progress,
    )


def summarize_mixes(results: list[MixResult]) -> dict[str, float]:
    """Average weighted speedup per policy (the numbers quoted in the text)."""
    if not results:
        return {}
    policies = list(results[0].weighted_speedup_percent)
    return {
        policy: arithmetic_mean(
            [r.weighted_speedup_percent[policy] for r in results]
        )
        for policy in policies
    }
