"""Plain-text result tables for the benchmark harness output."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(rows: Sequence[dict[str, Any]], title: str | None = None) -> str:
    """Render a list of row-dicts as an aligned text table.

    Column order follows the first row's key order; floats print with 3
    decimals; all figure/table benches use this for their paper-style
    output.
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = list(rows[0].keys())

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, tolerant of an empty sequence."""
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= max(1e-12, v)
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
