"""Figure 11: single-core LLC miss-rate reduction over LRU.

For every suite benchmark, the recorded LLC stream is replayed against
LRU, Hawkeye, MPPPB, SHiP++ and Glider (plus optionally MIN), and the
reduction in demand miss rate relative to LRU is reported — the paper's
headline single-core metric (Glider 8.9% vs Hawkeye 7.1%, MPPPB 6.5%,
SHiP++ 7.5% on their traces).
"""

from __future__ import annotations

import functools
from dataclasses import asdict, dataclass, field

from ..cache.hierarchy import simulate_llc
from ..perf.parallel import parallel_map
from ..policies.belady_policy import BeladyPolicy
from ..robust.suite import RobustSuiteRunner
from ..traces.suite import suite_group
from .runner import DEFAULT, ArtifactCache, ExperimentConfig
from .tables import arithmetic_mean

#: The Figure 11 contender set (LRU is the baseline, MIN the bound).
CONTENDERS = ("hawkeye", "mpppb", "ship++", "glider")


@dataclass
class MissRateResult:
    """Per-benchmark miss rates and reductions over LRU."""

    benchmark: str
    group: str
    lru_miss_rate: float
    miss_rates: dict[str, float]
    belady_miss_rate: float | None = None
    # Total (demand + writeback) hits — the quantity MIN provably
    # maximises; demand-only rates can be traded against writeback hits.
    total_hits: dict[str, int] = field(default_factory=dict)
    belady_total_hits: int | None = None

    def reduction(self, policy: str) -> float:
        """Relative miss reduction over LRU, in percent."""
        if self.lru_miss_rate <= 0:
            return 0.0
        return 100.0 * (self.lru_miss_rate - self.miss_rates[policy]) / self.lru_miss_rate

    def as_row(self) -> dict:
        row = {"benchmark": self.benchmark, "group": self.group}
        for policy in self.miss_rates:
            row[policy] = self.reduction(policy)
        return row


def _missrate_benchmark(
    benchmark: str,
    *,
    config: ExperimentConfig,
    policies: tuple[str, ...],
    include_belady: bool,
    cache: ArtifactCache | None = None,
    store=None,
) -> MissRateResult:
    """One Figure 11 row (module-level so a ``functools.partial`` of it
    pickles into process-pool workers; parallel callers pass ``store``
    and each worker rebuilds its own :class:`ArtifactCache`)."""
    cache = cache if cache is not None else ArtifactCache(config, store=store)
    hierarchy = config.hierarchy()
    stream = cache.llc_stream(benchmark)
    # Policies go in by registry *name*: name dispatch is what unlocks
    # the learned-policy fast kernels (instances always take the
    # reference engine so trained state stays inspectable).  Unknown
    # names still raise UnknownPolicyError from the reference resolver.
    lru_stats = simulate_llc(stream, "lru", hierarchy)
    rates: dict[str, float] = {}
    hits: dict[str, int] = {"lru": lru_stats.hits}
    for policy in policies:
        stats = simulate_llc(stream, policy, hierarchy)
        rates[policy] = stats.demand_miss_rate
        hits[policy] = stats.hits
    belady_rate = None
    belady_hits = None
    if include_belady:
        stats = simulate_llc(stream, BeladyPolicy.from_stream(stream), hierarchy)
        belady_rate = stats.demand_miss_rate
        belady_hits = stats.hits
    try:
        group = suite_group(benchmark)
    except KeyError:
        group = "other"
    return MissRateResult(
        benchmark=benchmark,
        group=group,
        lru_miss_rate=lru_stats.demand_miss_rate,
        miss_rates=rates,
        belady_miss_rate=belady_rate,
        total_hits=hits,
        belady_total_hits=belady_hits,
    )


def miss_rate_reduction(
    config: ExperimentConfig = DEFAULT,
    benchmarks: tuple[str, ...] | None = None,
    policies: tuple[str, ...] = CONTENDERS,
    include_belady: bool = False,
    cache: ArtifactCache | None = None,
    runner: RobustSuiteRunner | None = None,
    jobs: int = 1,
    supervise=None,
    journal=None,
    progress=None,
) -> list[MissRateResult]:
    """Reproduce Figure 11 rows; group averages appended at the end.

    With a ``runner``, each benchmark runs under its retry policy and a
    benchmark that still fails is recorded on ``runner.last_report``
    (structured failure + resume manifest) while the rest of the suite
    completes — the returned list then holds the completed subset.

    With ``jobs > 1``, benchmarks fan out across a supervised process
    pool (``supervise``/``journal`` tune its watchdogs and crash
    journal; a dead or hung worker costs a retry, not the run).  The
    results are bit-identical to the sequential run (workers rebuild
    state deterministically from the config); pair with an on-disk
    store so the expensive stream filter runs once per benchmark
    instead of once per worker touching it.
    """
    cache = cache or ArtifactCache(config)
    benchmarks = benchmarks or config.suite
    kwargs = dict(config=config, policies=policies, include_belady=include_belady)
    if jobs > 1:
        compute = functools.partial(_missrate_benchmark, store=cache.store, **kwargs)
    else:
        compute = functools.partial(_missrate_benchmark, cache=cache, **kwargs)
    if runner is None:
        return parallel_map(
            compute, benchmarks, jobs=jobs, supervise=supervise, journal=journal,
            task_ids=list(benchmarks), progress=progress,
        )
    if progress is not None:
        runner.progress = progress
    report = runner.run(
        benchmarks,
        compute,
        serialize=asdict,
        deserialize=lambda payload: MissRateResult(**payload),
        jobs=jobs,
    )
    return report.results(benchmarks)


def summarize_by_group(results: list[MissRateResult]) -> list[dict]:
    """The SPEC17/SPEC06/GAP/ALL average bars at the right of Figure 11."""
    policies = list(results[0].miss_rates) if results else []
    rows: list[dict] = []
    groups = sorted({r.group for r in results}) + ["ALL"]
    for group in groups:
        member = [r for r in results if group == "ALL" or r.group == group]
        if not member:
            continue
        row: dict = {"group": group, "n": len(member)}
        for policy in policies:
            row[policy] = arithmetic_mean([r.reduction(policy) for r in member])
        rows.append(row)
    return rows
