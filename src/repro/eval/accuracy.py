"""Predictor-accuracy experiments (Figures 9 and 10).

* Figure 9: offline accuracy of Hawkeye counters, the ordered-history
  SVM ("Perceptron"), the offline ISVM, and the attention LSTM on the
  six offline-analysis benchmarks, trained on 75% / tested on 25%.
* Figure 10: online accuracy of the Hawkeye and Glider predictors while
  driving the actual cache (training-as-you-go on sampled sets).
"""

from __future__ import annotations

import functools
from dataclasses import asdict, dataclass

from ..cache.hierarchy import simulate_llc
from ..perf.parallel import parallel_map
from ..ml.svm import OfflineHawkeye, OfflineISVM, OrderedHistorySVM
from ..ml.training import train_linear_model, train_lstm
from ..policies.hawkeye import HawkeyePolicy
from ..core.glider import GliderPolicy
from ..robust.suite import RobustSuiteRunner
from .runner import DEFAULT, ArtifactCache, ExperimentConfig
from .tables import arithmetic_mean


@dataclass
class OfflineAccuracyResult:
    """Per-benchmark accuracy of the four offline models (one Fig. 9 group)."""

    benchmark: str
    hawkeye: float
    perceptron: float
    offline_isvm: float
    attention_lstm: float

    def as_row(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "Hawkeye": 100 * self.hawkeye,
            "Perceptron": 100 * self.perceptron,
            "Offline ISVM": 100 * self.offline_isvm,
            "Attention LSTM": 100 * self.attention_lstm,
        }


def _offline_accuracy_benchmark(
    benchmark: str,
    *,
    config: ExperimentConfig,
    linear_epochs: int,
    cache: ArtifactCache | None = None,
    store=None,
) -> OfflineAccuracyResult:
    """One Figure 9 group (module-level so it pickles into pool workers)."""
    cache = cache if cache is not None else ArtifactCache(config, store=store)
    labelled = cache.labelled(benchmark)
    hawkeye = train_linear_model(OfflineHawkeye(), labelled, epochs=linear_epochs)
    perceptron = train_linear_model(
        OrderedHistorySVM(history_length=3), labelled, epochs=linear_epochs
    )
    isvm = train_linear_model(OfflineISVM(k=5), labelled, epochs=linear_epochs)
    _, lstm = train_lstm(
        labelled,
        config.lstm_config(labelled.vocab_size),
        epochs=config.lstm_epochs,
    )
    return OfflineAccuracyResult(
        benchmark=benchmark,
        hawkeye=hawkeye.test_accuracy,
        perceptron=perceptron.test_accuracy,
        offline_isvm=isvm.test_accuracy,
        attention_lstm=lstm.test_accuracy,
    )


def offline_accuracy(
    config: ExperimentConfig = DEFAULT,
    benchmarks: tuple[str, ...] | None = None,
    cache: ArtifactCache | None = None,
    linear_epochs: int = 10,
    runner: RobustSuiteRunner | None = None,
    jobs: int = 1,
    supervise=None,
    journal=None,
    progress=None,
) -> list[OfflineAccuracyResult]:
    """Reproduce Figure 9 (plus the "average" bar, appended last).

    With a ``runner``, failing benchmarks degrade to structured failures
    on ``runner.last_report`` and the average covers the completed rows.
    With ``jobs > 1`` the benchmarks fan out across a supervised process
    pool (``supervise``/``journal`` tune its watchdogs and crash
    journal) with bit-identical results.
    """
    cache = cache or ArtifactCache(config)
    benchmarks = benchmarks or config.offline_benchmarks
    kwargs = dict(config=config, linear_epochs=linear_epochs)
    if jobs > 1:
        compute = functools.partial(
            _offline_accuracy_benchmark, store=cache.store, **kwargs
        )
    else:
        compute = functools.partial(_offline_accuracy_benchmark, cache=cache, **kwargs)
    if runner is None:
        results = parallel_map(
            compute, benchmarks, jobs=jobs, supervise=supervise, journal=journal,
            task_ids=list(benchmarks), progress=progress,
        )
    else:
        if progress is not None:
            runner.progress = progress
        report = runner.run(
            benchmarks,
            compute,
            serialize=asdict,
            deserialize=lambda payload: OfflineAccuracyResult(**payload),
            jobs=jobs,
        )
        results = report.results(benchmarks)
    if not results:
        return results
    results.append(
        OfflineAccuracyResult(
            benchmark="average",
            hawkeye=arithmetic_mean([r.hawkeye for r in results]),
            perceptron=arithmetic_mean([r.perceptron for r in results]),
            offline_isvm=arithmetic_mean([r.offline_isvm for r in results]),
            attention_lstm=arithmetic_mean([r.attention_lstm for r in results]),
        )
    )
    return results


@dataclass
class OnlineAccuracyResult:
    """Per-benchmark online predictor accuracy (one Fig. 10 group)."""

    benchmark: str
    hawkeye: float
    glider: float

    def as_row(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "Hawkeye": 100 * self.hawkeye,
            "Glider": 100 * self.glider,
        }


def _online_accuracy_benchmark(
    benchmark: str,
    *,
    config: ExperimentConfig,
    cache: ArtifactCache | None = None,
    store=None,
) -> OnlineAccuracyResult:
    """One Figure 10 group (module-level so it pickles into pool workers)."""
    cache = cache if cache is not None else ArtifactCache(config, store=store)
    stream = cache.llc_stream(benchmark)
    hawkeye = HawkeyePolicy()
    simulate_llc(stream, hawkeye, config.hierarchy())
    glider = GliderPolicy()
    simulate_llc(stream, glider, config.hierarchy())
    return OnlineAccuracyResult(
        benchmark=benchmark,
        hawkeye=hawkeye.online_accuracy,
        glider=glider.online_accuracy,
    )


def online_accuracy(
    config: ExperimentConfig = DEFAULT,
    benchmarks: tuple[str, ...] | None = None,
    cache: ArtifactCache | None = None,
    runner: RobustSuiteRunner | None = None,
    jobs: int = 1,
    supervise=None,
    journal=None,
    progress=None,
) -> list[OnlineAccuracyResult]:
    """Reproduce Figure 10: train-while-running accuracy of both predictors.

    Accuracy is measured exactly as the policies experience it: each
    sampler-labelled access scores the prediction that was made when the
    line was last touched.  With ``jobs > 1`` the benchmarks fan out
    across a supervised process pool with bit-identical results.
    """
    cache = cache or ArtifactCache(config)
    benchmarks = benchmarks or config.suite
    if jobs > 1:
        compute = functools.partial(
            _online_accuracy_benchmark, config=config, store=cache.store
        )
    else:
        compute = functools.partial(
            _online_accuracy_benchmark, config=config, cache=cache
        )
    if runner is None:
        results = parallel_map(
            compute, benchmarks, jobs=jobs, supervise=supervise, journal=journal,
            task_ids=list(benchmarks), progress=progress,
        )
    else:
        if progress is not None:
            runner.progress = progress
        report = runner.run(
            benchmarks,
            compute,
            serialize=asdict,
            deserialize=lambda payload: OnlineAccuracyResult(**payload),
            jobs=jobs,
        )
        results = report.results(benchmarks)
    if not results:
        return results
    results.append(
        OnlineAccuracyResult(
            benchmark="average",
            hawkeye=arithmetic_mean([r.hawkeye for r in results]),
            glider=arithmetic_mean([r.glider for r in results]),
        )
    )
    return results
