"""The prediction daemon (``repro.serve.server``).

:class:`PredictionServer` accepts NDJSON request streams over TCP,
routes each request to its owning shard worker, and guarantees that
**every submitted request terminates in exactly one response** —
a decision or a typed error — no matter what fails underneath:

* **Backpressure** — each shard has a bounded request queue; a full
  queue produces an immediate typed ``shed`` response (and bumps
  ``shed_total``) instead of unbounded memory growth.
* **Deadlines** — every request carries an absolute deadline (client
  ``deadline_ms`` clamped to a server maximum).  A sweeper thread times
  out overdue in-flight requests with typed ``timeout`` responses; the
  shard worker additionally refuses to compute requests that expired
  while queued.
* **Circuit breakers** — each shard has a
  :class:`~repro.serve.breaker.CircuitBreaker`; while open, requests
  for that shard are rejected with typed ``breaker-open`` errors
  without being enqueued.
* **Crash recovery** — a watchdog thread detects dead or heartbeat-
  stale shard workers, SIGKILLs them, fails their in-flight requests
  with typed ``shard-restarted`` errors (idempotent ``predict``
  requests are instead re-dispatched with
  :class:`~repro.robust.retry.RetryPolicy` jittered backoff), and
  restarts the shard re-warmed from its latest snapshot.
* **Graceful drain** — :meth:`PredictionServer.drain` (wired to
  SIGTERM by the CLI) stops accepting work, lets in-flight requests
  finish, flushes shard queues through worker sentinels, writes a
  final metrics snapshot, and journals the shutdown.

Slow clients cannot stall the control plane: responses are queued per
connection and written by a dedicated writer thread; if a client stops
reading and its outbound queue fills, further responses *to that
client* are dropped and counted (``slow_client_drops``) — accounted,
never silent, and isolated to the misbehaving connection.

An admin HTTP endpoint exposes ``/healthz``, ``/readyz``, and live
Prometheus ``/metrics`` (via :func:`repro.obs.metrics.live_prometheus`).
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import queue as queue_mod
import shutil
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..robust.retry import RetryPolicy
from ..robust.supervise import CrashJournal, sweep_stale_run_dirs
from .breaker import CircuitBreaker
from .protocol import (
    ERR_BAD_REQUEST,
    ERR_BREAKER_OPEN,
    ERR_DRAINING,
    ERR_SHARD_RESTARTED,
    ERR_SHED,
    ERR_TIMEOUT,
    IDEMPOTENT_KINDS,
    ProtocolError,
    Request,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from .shard import ShardHandle

__all__ = ["PredictionServer", "ServeConfig", "SERVE_RUN_DIR_PREFIX"]

#: Prefix of the temp dirs holding shard heartbeat files.
SERVE_RUN_DIR_PREFIX = "repro-serve-"

#: Millisecond-scale latency histogram bucket bounds.
LATENCY_BUCKETS_MS = (0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000)


@dataclass
class ServeConfig:
    """All knobs of the prediction service."""

    policy: str = "lru"
    policy_kwargs: dict = field(default_factory=dict)
    shards: int = 2
    cache_sets: int = 256
    cache_ways: int = 16
    line_size: int = 64
    host: str = "127.0.0.1"
    port: int = 0  # 0: ephemeral, bound port in PredictionServer.port
    admin_port: int | None = 0  # None disables the admin endpoint
    queue_depth: int = 256
    default_deadline_ms: float = 200.0
    max_deadline_ms: float = 5000.0
    batch_max: int = 64
    batch_budget_ms: float | None = 1000.0
    heartbeat_interval: float = 0.2
    heartbeat_grace: float = 2.0
    restart_deadline_s: float = 15.0
    breaker_threshold: int = 5
    breaker_policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            base_delay=0.2, backoff=2.0, max_delay=5.0, jitter=0.5, max_attempts=6
        )
    )
    redispatch_policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=3, base_delay=0.05, backoff=2.0, max_delay=0.5, jitter=0.5
        )
    )
    snapshot_every: int = 512
    store_dir: str | None = None
    mp_start_method: str = "spawn"
    poll_interval: float = 0.05
    drain_timeout_s: float = 15.0
    client_queue_depth: int = 1024
    journal_max_bytes: int = 4_000_000
    chaos_delay_ms: float = 0.0  # fault injection: per-request compute delay
    #: Span tracing: the server and every shard worker write per-process
    #: JSONL traces into ``store_dir``, all bound to one server run id —
    #: ``obs chrome`` merges them into a single cross-process timeline.
    trace: bool = False
    #: Per-shard decision telemetry: each worker runs a
    #: :class:`repro.obs.insight.DecisionRecorder` labelled ``shard=N``,
    #: mirrored live onto the admin ``/metrics`` endpoint and written as
    #: insight artifacts into ``store_dir`` at drain.
    insight: bool = False

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.cache_sets & (self.cache_sets - 1) or self.cache_sets <= 0:
            raise ValueError("cache_sets must be a positive power of two")
        if self.shards > self.cache_sets:
            raise ValueError("cannot have more shards than cache sets")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.default_deadline_ms <= 0 or self.max_deadline_ms <= 0:
            raise ValueError("deadlines must be positive")

    def cache_params(self) -> dict:
        """Constructor kwargs of each shard's full-geometry CacheConfig."""
        return {
            "name": f"serve-{self.policy}",
            "size_bytes": self.cache_sets * self.cache_ways * self.line_size,
            "associativity": self.cache_ways,
            "line_size": self.line_size,
        }


class _Conn:
    """One client connection: socket + outbound queue + writer thread."""

    _ids = itertools.count()

    def __init__(self, sock: socket.socket, server: "PredictionServer") -> None:
        self.sock = sock
        self.server = server
        self.conn_id = next(self._ids)
        self.closed = threading.Event()
        self.out_q: queue_mod.Queue = queue_mod.Queue(
            maxsize=server.config.client_queue_depth
        )
        self.writer = threading.Thread(
            target=self._write_loop, daemon=True, name=f"serve-conn-w{self.conn_id}"
        )
        self.reader = threading.Thread(
            target=self._read_loop, daemon=True, name=f"serve-conn-r{self.conn_id}"
        )

    def start(self) -> None:
        self.writer.start()
        self.reader.start()

    def send(self, response: dict) -> None:
        """Queue a response; a stalled client drops it *counted*."""
        try:
            self.out_q.put_nowait(response)
        except queue_mod.Full:
            self.server._count("slow_client_drops")

    def _write_loop(self) -> None:
        while True:
            obj = self.out_q.get()
            if obj is None:
                break
            if self.closed.is_set():
                self.server._count("closed_client_drops")
                continue
            try:
                self.sock.sendall(encode(obj))
            except OSError:
                self.closed.set()
                self.server._count("closed_client_drops")

    def _read_loop(self) -> None:
        try:
            reader = self.sock.makefile("rb")
            for line in reader:
                if not line.strip():
                    continue
                self.server._handle_line(self, line)
        except OSError:
            pass
        finally:
            self.closed.set()
            # In-flight requests for this connection still resolve (and
            # are counted as closed_client_drops); the writer exits once
            # it sees the sentinel.
            try:
                self.out_q.put_nowait(None)
            except queue_mod.Full:
                pass
            self.server._forget_conn(self)

    def close(self) -> None:
        self.closed.set()
        try:
            self.out_q.put_nowait(None)
        except queue_mod.Full:
            pass
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class _Pending:
    """Parent-side record of one dispatched (or parked) request."""

    __slots__ = (
        "request",
        "conn",
        "shard",
        "generation",
        "submitted",
        "attempts",
        "delays",
        "retry_at",
    )

    def __init__(self, request: Request, conn: _Conn) -> None:
        self.request = request
        self.conn = conn
        self.shard = request.shard
        self.generation = 0
        self.submitted = time.monotonic()
        self.attempts = 0
        self.delays = None  # lazily-built RetryPolicy.delays() iterator
        self.retry_at = 0.0


class _AdminHandler(BaseHTTPRequestHandler):
    """``/healthz`` / ``/readyz`` / ``/metrics`` endpoints."""

    server_version = "repro-serve/1.0"

    def _respond(self, code: int, body: str, content_type: str = "text/plain") -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        prediction_server: "PredictionServer" = self.server.prediction_server
        if self.path == "/healthz":
            self._respond(200, "ok\n")
        elif self.path == "/readyz":
            ready, reason = prediction_server.readiness()
            self._respond(200 if ready else 503, reason + "\n")
        elif self.path == "/metrics":
            self._respond(
                200,
                obs_metrics.live_prometheus(),
                content_type="text/plain; version=0.0.4",
            )
        elif self.path == "/stats":
            self._respond(
                200,
                json.dumps(prediction_server.stats(), indent=1) + "\n",
                content_type="application/json",
            )
        else:
            self._respond(404, "not found\n")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # admin probes are high-frequency; stay quiet


class PredictionServer:
    """The sharded, fault-tolerant replacement-policy daemon."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        self._ctx = multiprocessing.get_context(cfg.mp_start_method)
        self._rid = itertools.count(1)
        self._lock = threading.Lock()  # pending table + parked list
        self._pending: dict[int, _Pending] = {}
        self._parked: list[_Pending] = []
        self._counters_lock = threading.Lock()
        self.counters: dict[str, int] = {}
        self._conns: set[_Conn] = set()
        self._conns_lock = threading.Lock()
        self._stop = threading.Event()
        self.draining = threading.Event()
        self.drained = threading.Event()
        self._threads: list[threading.Thread] = []
        self._listener: socket.socket | None = None
        self._admin: ThreadingHTTPServer | None = None
        self.port: int | None = None
        self.admin_port: int | None = None
        self.started_at = 0.0
        self.shards: list[ShardHandle] = []
        self.breakers: list[CircuitBreaker] = []
        self.journal: CrashJournal | None = None
        self._store_dir: Path | None = None
        self._own_store = False
        self.run_dir: str | None = None
        self.run_id: str | None = None
        self._tracer: obs_trace.TraceLog | None = None
        # Address routing: line -> set of the logical cache -> shard.
        self._line_shift = (cfg.line_size - 1).bit_length()
        self._set_mask = cfg.cache_sets - 1

    # -- counters --------------------------------------------------------------

    def _count(self, name: str, amount: int = 1, **labels) -> None:
        with self._counters_lock:
            self.counters[name] = self.counters.get(name, 0) + amount
        if obs_metrics.ENABLED:
            obs_metrics.counter(f"serve.{name}", **labels).inc(amount)

    def _observe_latency(self, kind: str, seconds: float) -> None:
        if obs_metrics.ENABLED:
            obs_metrics.histogram(
                "serve.latency_ms", buckets=LATENCY_BUCKETS_MS, kind=kind
            ).observe(seconds * 1000.0)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Bring up shards, watchdog, sweeper, data plane, and admin."""
        cfg = self.config
        obs_metrics.enable()  # live /metrics must always have instruments
        if cfg.store_dir:
            self._store_dir = Path(cfg.store_dir)
            self._store_dir.mkdir(parents=True, exist_ok=True)
        else:
            self._store_dir = Path(tempfile.mkdtemp(prefix="repro-serve-store-"))
            self._own_store = True
        self.journal = CrashJournal(
            self._store_dir / "serve-journal.jsonl", max_bytes=cfg.journal_max_bytes
        )
        sweep_stale_run_dirs(prefix=SERVE_RUN_DIR_PREFIX, journal=self.journal)
        self.run_dir = tempfile.mkdtemp(prefix=SERVE_RUN_DIR_PREFIX)
        if cfg.trace or cfg.insight:
            # One correlation id for the whole service: the server's and
            # every worker's spans/artifacts carry it, so the per-process
            # files merge into a single cross-process view.
            self.run_id = obs_trace.current_run_id(create=True)
        if cfg.trace:
            self._tracer = obs_trace.TraceLog(
                self._store_dir / "serve-trace-server.jsonl", run_id=self.run_id
            )
        self.started_at = time.monotonic()
        for shard_id in range(cfg.shards):
            handle = ShardHandle(
                shard_id,
                self._ctx,
                policy=cfg.policy,
                policy_kwargs=cfg.policy_kwargs,
                cache_params=cfg.cache_params(),
                run_dir=self.run_dir,
                snapshot_path=str(self._store_dir / f"shard-{shard_id}.snapshot"),
                queue_depth=cfg.queue_depth,
                heartbeat_interval=cfg.heartbeat_interval,
                snapshot_every=cfg.snapshot_every,
                batch_max=cfg.batch_max,
                batch_budget_s=(
                    cfg.batch_budget_ms / 1000.0 if cfg.batch_budget_ms else None
                ),
                chaos_delay_s=cfg.chaos_delay_ms / 1000.0,
                trace_path=(
                    str(self._store_dir / f"serve-trace-shard-{shard_id}.jsonl")
                    if cfg.trace
                    else None
                ),
                run_id=self.run_id,
                insight_path=(
                    str(self._store_dir / f"serve-insight-shard-{shard_id}.json")
                    if cfg.insight
                    else None
                ),
            )
            self.shards.append(handle)
            self.breakers.append(
                CircuitBreaker(
                    failure_threshold=cfg.breaker_threshold,
                    retry_policy=cfg.breaker_policy,
                )
            )
            handle.start()
            self._start_collector(handle)
        self._spawn(self._watchdog_loop, "serve-watchdog")
        self._spawn(self._sweeper_loop, "serve-sweeper")
        self._start_listener()
        if cfg.admin_port is not None:
            self._start_admin()
        self.journal.append(
            event="server-start",
            policy=cfg.policy,
            shards=cfg.shards,
            port=self.port,
            admin_port=self.admin_port,
            pid=os.getpid(),
            run_id=self.run_id,
        )

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until every shard reported ready (True) or timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for handle in self.shards:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                return False
            if not handle.ready.wait(remaining):
                return False
        return True

    def readiness(self) -> tuple[bool, str]:
        if self.draining.is_set():
            return False, "draining"
        missing = [h.shard_id for h in self.shards if not h.ready.is_set()]
        if missing:
            return False, f"shards not ready: {missing}"
        return True, "ok"

    def _spawn(self, target, name: str) -> threading.Thread:
        thread = threading.Thread(target=target, daemon=True, name=name)
        thread.start()
        self._threads.append(thread)
        return thread

    def _start_listener(self) -> None:
        cfg = self.config
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((cfg.host, cfg.port))
        listener.listen(128)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._spawn(self._accept_loop, "serve-accept")

    def _start_admin(self) -> None:
        admin = ThreadingHTTPServer(
            (self.config.host, self.config.admin_port), _AdminHandler
        )
        admin.daemon_threads = True
        admin.prediction_server = self
        self._admin = admin
        self.admin_port = admin.server_address[1]
        self._spawn(admin.serve_forever, "serve-admin")

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: drain started
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Conn(sock, self)
            with self._conns_lock:
                self._conns.add(conn)
            conn.start()

    def _forget_conn(self, conn: _Conn) -> None:
        with self._conns_lock:
            self._conns.discard(conn)

    # -- request path ----------------------------------------------------------

    def route(self, address: int) -> int:
        """Owning shard of ``address`` (by set index of the logical cache)."""
        set_index = (address >> self._line_shift) & self._set_mask
        return set_index % self.config.shards

    def _handle_line(self, conn: _Conn, line: bytes) -> None:
        self._count("requests_total")
        try:
            request = parse_request(line)
        except ProtocolError as error:
            self._count("errors_total", error=ERR_BAD_REQUEST)
            conn.send(
                error_response(error.request_id or "?", ERR_BAD_REQUEST, str(error))
            )
            return
        if request.kind == "ping":
            conn.send(ok_response(request.id, "ping", pong=True))
            return
        if request.kind == "stats":
            conn.send(ok_response(request.id, "stats", **self.stats()))
            return
        cfg = self.config
        now = time.monotonic()
        deadline_ms = min(
            request.deadline_ms or cfg.default_deadline_ms, cfg.max_deadline_ms
        )
        request.rid = next(self._rid)
        request.deadline = now + deadline_ms / 1000.0
        request.shard = self.route(request.address)
        if self.draining.is_set():
            self._respond_error(
                conn, request, ERR_DRAINING, "server is draining; no new work accepted"
            )
            return
        entry = _Pending(request, conn)
        self._dispatch(entry)

    def _respond_error(
        self, conn: _Conn, request: Request, error_type: str, message: str, **fields
    ) -> None:
        self._count("errors_total", error=error_type)
        conn.send(error_response(request.id, error_type, message, **fields))

    def _dispatch(self, entry: _Pending) -> None:
        """Route one request to its shard; every exit path responds."""
        request = entry.request
        handle = self.shards[request.shard]
        breaker = self.breakers[request.shard]
        if not breaker.allow():
            self._respond_error(
                entry.conn,
                request,
                ERR_BREAKER_OPEN,
                f"shard {request.shard} circuit breaker is open",
                shard=request.shard,
            )
            return
        entry.attempts += 1
        entry.generation = handle.generation
        msg = {
            "rid": request.rid,
            "id": request.id,
            "kind": request.kind,
            "pc": request.pc,
            "address": request.address,
            "write": request.write,
            "core": request.core,
            "deadline": request.deadline,
            "trace": request.trace,
        }
        with self._lock:
            self._pending[request.rid] = entry
        try:
            handle.enqueue(msg)
        except queue_mod.Full:
            with self._lock:
                self._pending.pop(request.rid, None)
            self._count("shed_total", shard=request.shard)
            self._respond_error(
                entry.conn,
                request,
                ERR_SHED,
                f"shard {request.shard} queue is full ({self.config.queue_depth})",
                shard=request.shard,
            )
        except (OSError, ValueError, AssertionError):
            # The queue died mid-restart; treat like a shard failure.
            with self._lock:
                self._pending.pop(request.rid, None)
            self._shard_failure_outcome(entry)

    def _shard_failure_outcome(self, entry: _Pending) -> None:
        """Typed error or backoff re-dispatch after the owning shard died."""
        request = entry.request
        if request.kind in IDEMPOTENT_KINDS:
            if entry.delays is None:
                entry.delays = self.config.redispatch_policy.delays()
            delay = next(entry.delays, None)
            now = time.monotonic()
            if delay is not None and now + delay < request.deadline:
                entry.retry_at = now + delay
                self._count("redispatch_total")
                with self._lock:
                    self._parked.append(entry)
                return
        self._respond_error(
            entry.conn,
            request,
            ERR_SHARD_RESTARTED,
            f"shard {request.shard} worker died while the request was in flight",
            shard=request.shard,
        )

    # -- collector / sweeper / watchdog ---------------------------------------

    def _start_collector(self, handle: ShardHandle) -> None:
        generation = handle.generation
        out_q = handle.out_q

        def collect() -> None:
            while not self._stop.is_set() and handle.generation == generation:
                try:
                    item = out_q.get(timeout=0.2)
                except queue_mod.Empty:
                    continue
                except (OSError, EOFError, ValueError):
                    return
                try:
                    if isinstance(item, dict):  # control message
                        self._handle_ctrl(handle, item)
                        continue
                    _tag, responses = item
                    for wrapped in responses:
                        self._resolve(wrapped["rid"], wrapped["response"], handle)
                except Exception:  # noqa: BLE001 — a bad item must not
                    self._count("collector_errors")  # kill the collector

        self._spawn(collect, f"serve-collect-{handle.shard_id}.{generation}")

    def _handle_ctrl(self, handle: ShardHandle, ctrl: dict) -> None:
        if ctrl.get("ctrl") == "ready":
            handle.ready.set()
            if ctrl.get("warm"):
                handle.warm_starts += 1
            self.journal.append(
                event="shard-ready",
                shard=handle.shard_id,
                pid=ctrl.get("pid"),
                warm=bool(ctrl.get("warm")),
                accesses=ctrl.get("accesses"),
                startup_s=round(time.monotonic() - handle.started_at, 3),
            )
            if obs_metrics.ENABLED:
                obs_metrics.gauge("serve.shards_ready").set(
                    sum(1 for h in self.shards if h.ready.is_set())
                )
        elif ctrl.get("ctrl") == "drained":
            handle.drained.set()
        elif ctrl.get("ctrl") == "insight":
            # Rolling per-shard decision-quality summary from the worker's
            # recorder; mirrored as shard-labelled gauges so the admin
            # /metrics endpoint carries live model quality per shard.
            summary = ctrl.get("summary")
            if isinstance(summary, dict) and obs_metrics.ENABLED:
                for key in (
                    "accuracy",
                    "precision",
                    "coverage",
                    "flip_rate",
                    "scored",
                    "sampled_accesses",
                    "evictions",
                ):
                    value = summary.get(key)
                    if isinstance(value, (int, float)):
                        obs_metrics.gauge(
                            f"insight.{key}", shard=handle.shard_id
                        ).set(value)

    def _resolve(self, rid: int, response: dict, handle: ShardHandle) -> None:
        with self._lock:
            entry = self._pending.pop(rid, None)
        if entry is None:
            self._count("late_responses")  # timed out first; typed, not silent
            return
        self.breakers[handle.shard_id].record_success()
        if response.get("ok"):
            self._count("decisions_total")
        else:
            error_type = response.get("error", {}).get("type", "unknown")
            self._count("errors_total", error=error_type)
            if error_type == ERR_TIMEOUT:
                self._count("timeout_total")
        latency = time.monotonic() - entry.submitted
        self._observe_latency(entry.request.kind, latency)
        if self._tracer is not None:
            # Dispatcher-side view of the same request the worker traced:
            # start is reconstructed from the dispatch time so the span
            # covers queueing + compute + collection.
            dur_us = latency * 1e6
            self._tracer.complete(
                "serve.request",
                time.time() * 1e6 - dur_us,
                dur_us,
                rid=rid,
                id=entry.request.id,
                kind=entry.request.kind,
                shard=handle.shard_id,
                ok=bool(response.get("ok")),
                trace=entry.request.trace,
            )
        entry.conn.send(response)

    def _sweeper_loop(self) -> None:
        """Time out overdue requests; re-dispatch parked idempotent ones.

        The sweeper is the exactly-one-response backstop, so it must
        never die: each tick is exception-guarded.
        """
        while not self._stop.is_set():
            try:
                self._sweep_once()
            except Exception:  # noqa: BLE001 — keep the backstop alive
                self._count("sweeper_errors")
            self._stop.wait(self.config.poll_interval)

    def _sweep_once(self) -> None:
        now = time.monotonic()
        expired: list[_Pending] = []
        due: list[_Pending] = []
        with self._lock:
            for rid, entry in list(self._pending.items()):
                if now > entry.request.deadline:
                    del self._pending[rid]
                    expired.append(entry)
            keep: list[_Pending] = []
            for entry in self._parked:
                if now > entry.request.deadline:
                    expired.append(entry)
                elif now >= entry.retry_at:
                    due.append(entry)
                else:
                    keep.append(entry)
            self._parked = keep
        for entry in expired:
            self._count("timeout_total")
            self.breakers[entry.request.shard].record_failure()
            self._respond_error(
                entry.conn,
                entry.request,
                ERR_TIMEOUT,
                f"request deadline expired after {entry.attempts} dispatch(es)",
                shard=entry.request.shard,
                stage="dispatch",
            )
        for entry in due:
            self._dispatch(entry)
        if obs_metrics.ENABLED:
            with self._lock:
                obs_metrics.gauge("serve.inflight").set(len(self._pending))

    def _watchdog_loop(self) -> None:
        """Detect dead / wedged / start-stuck shards; restart them."""
        cfg = self.config
        while not self._stop.is_set():
            now = time.monotonic()
            for handle in self.shards:
                if self._stop.is_set() or self.drained.is_set():
                    return
                reason = None
                if handle.process is not None and not handle.alive():
                    if not self.draining.is_set() or not handle.drained.is_set():
                        reason = "exited"
                elif handle.heartbeat_stale(cfg.heartbeat_grace, now):
                    reason = "heartbeat-stale"
                elif (
                    not handle.ready.is_set()
                    and now - handle.started_at > cfg.restart_deadline_s
                ):
                    reason = "start-timeout"
                if reason is None:
                    continue
                if self.draining.is_set():
                    # No restarts mid-drain: fail its in-flight work and
                    # let the drain account for it.
                    self._fail_shard_pending(handle)
                    handle.drained.set()
                    continue
                try:
                    self._restart_shard(handle, reason)
                except Exception as error:  # noqa: BLE001
                    # A transient spawn failure (fork EAGAIN under load)
                    # must not kill the watchdog: journal it and retry
                    # on the next poll tick.
                    self._count("restart_errors")
                    self.journal.append(
                        event="shard-restart-error",
                        shard=handle.shard_id,
                        reason=reason,
                        error=f"{type(error).__name__}: {error}",
                    )
            self._stop.wait(cfg.poll_interval)

    def _fail_shard_pending(self, handle: ShardHandle) -> list[_Pending]:
        victims: list[_Pending] = []
        with self._lock:
            for rid, entry in list(self._pending.items()):
                if (
                    entry.request.shard == handle.shard_id
                    and entry.generation == handle.generation
                ):
                    del self._pending[rid]
                    victims.append(entry)
        for entry in victims:
            self._shard_failure_outcome(entry)
        return victims

    def _restart_shard(self, handle: ShardHandle, reason: str) -> None:
        pid = handle.pid
        self._count("shard_restarts", shard=handle.shard_id)
        self.breakers[handle.shard_id].record_failure()
        handle.kill()  # covers heartbeat-stale (e.g. SIGSTOPped) workers
        victims = self._fail_shard_pending(handle)
        self.journal.append(
            event="shard-died",
            shard=handle.shard_id,
            pid=pid,
            reason=reason,
            generation=handle.generation,
            inflight_failed=len(victims),
        )
        if handle.process is not None:
            handle.process.join(timeout=2.0)
        handle.start()
        self._start_collector(handle)
        self.journal.append(
            event="shard-restarting",
            shard=handle.shard_id,
            pid=handle.pid,
            generation=handle.generation,
        )

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe service state (the ``stats`` request / ``/stats``)."""
        shard_rows = []
        for handle in self.shards:
            try:
                depth = handle.in_q.qsize() if handle.in_q is not None else 0
            except NotImplementedError:  # pragma: no cover - macOS qsize
                depth = -1
            shard_rows.append(
                {
                    "shard": handle.shard_id,
                    "pid": handle.pid,
                    "alive": handle.alive(),
                    "ready": handle.ready.is_set(),
                    "generation": handle.generation,
                    "restarts": handle.restarts,
                    "warm_starts": handle.warm_starts,
                    "queue_depth": depth,
                    "breaker": self.breakers[handle.shard_id].snapshot(),
                }
            )
        with self._counters_lock:
            counters = dict(sorted(self.counters.items()))
        with self._lock:
            inflight = len(self._pending)
            parked = len(self._parked)
        return {
            "policy": self.config.policy,
            "shards": shard_rows,
            "counters": counters,
            "inflight": inflight,
            "parked": parked,
            "draining": self.draining.is_set(),
            "uptime_s": round(time.monotonic() - self.started_at, 3),
        }

    # -- drain -----------------------------------------------------------------

    def drain(self, timeout: float | None = None) -> dict:
        """Graceful shutdown: finish in-flight work, flush, journal, stop.

        Returns a summary dict (final counters + per-shard state).
        Idempotent: a second call returns the first call's summary.
        """
        if self.draining.is_set():
            self.drained.wait(timeout or self.config.drain_timeout_s)
            return getattr(self, "_drain_summary", {})
        timeout = timeout or self.config.drain_timeout_s
        deadline = time.monotonic() + timeout
        self.draining.set()
        self.journal.append(event="drain-start")
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        # 1. Let in-flight requests finish (the sweeper keeps timing out
        #    stragglers, so this converges within the max deadline).
        while time.monotonic() < deadline:
            with self._lock:
                if not self._pending and not self._parked:
                    break
            time.sleep(self.config.poll_interval)
        # 2. Flush shard queues through worker sentinels.
        for handle in self.shards:
            try:
                handle.in_q.put_nowait(None)
            except (queue_mod.Full, OSError, ValueError, AssertionError):
                handle.drained.set()  # queue unusable: nothing to flush
        for handle in self.shards:
            remaining = max(0.1, deadline - time.monotonic())
            if not handle.drained.wait(remaining):
                self.journal.append(
                    event="drain-shard-timeout", shard=handle.shard_id
                )
            handle.kill()
            if handle.process is not None:
                handle.process.join(timeout=2.0)
        # 3. Stop the service threads and close client connections.
        self._stop.set()
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.close()
        if self._admin is not None:
            self._admin.shutdown()
            self._admin.server_close()
        if self._tracer is not None:
            self._tracer.close()
        # 4. Final metrics snapshot + journal summary.
        summary = {
            "stats": self.stats(),
            "clean": all(h.drained.is_set() for h in self.shards),
        }
        snapshot = obs_metrics.registry().snapshot(meta={"source": "serve-drain"})
        metrics_path = self._store_dir / "serve-metrics-final.json"
        try:
            obs_metrics.save_snapshot(metrics_path, snapshot)
            summary["metrics_path"] = str(metrics_path)
        except OSError:
            pass
        self.journal.append(
            event="drained",
            clean=summary["clean"],
            counters=summary["stats"]["counters"],
        )
        if self.run_dir:
            shutil.rmtree(self.run_dir, ignore_errors=True)
        if self._own_store:
            shutil.rmtree(self._store_dir, ignore_errors=True)
        self._drain_summary = summary
        self.drained.set()
        return summary
