"""Wire protocol of the prediction service (``repro.serve.protocol``).

The data plane is newline-delimited JSON (NDJSON) over TCP: one request
object per line in, one response object per line out.  Responses carry
the client's ``id`` verbatim, so clients may pipeline arbitrarily many
requests per connection and match responses by id — ordering across a
connection is *not* guaranteed once requests fan out to different
shards.

Request kinds:

``access``
    A stateful cache access: the shard performs a full policy-driven
    hit/miss/eviction step and returns the decision.  Not idempotent —
    if the owning shard dies mid-request, the client receives a typed
    ``shard-restarted`` error (replaying it could double-train the
    policy).
``predict``
    A pure reuse prediction for a PC (plus a presence probe for the
    address).  Idempotent: the dispatcher may transparently re-dispatch
    it with jittered backoff after a shard restart.
``ping`` / ``stats``
    Answered by the parent without touching a shard; ``stats`` exposes
    per-shard pids and restart counts (the chaos harness uses it to
    pick a victim).

Any request may carry an optional scalar ``trace`` field — opaque
client span context (conventionally ``"<client-run-id>/<req-id>"``)
that rides along into the server's and the owning shard's trace spans,
so one merged chrome trace covers client, dispatcher, and worker.

Failure taxonomy — **every** submitted request terminates in exactly
one response, either a decision (``ok: true``) or one of these typed
errors (``ok: false``), mirroring the batch pipeline's crash-journal
taxonomies:

* ``bad-request`` — unparseable or invalid request line;
* ``shed`` — the shard's bounded queue was full (backpressure; retry
  later);
* ``timeout`` — the per-request deadline expired before a decision was
  produced (in queue, in batch, or awaiting the shard);
* ``shard-restarted`` — the owning shard died while the request was in
  flight;
* ``breaker-open`` — the shard's circuit breaker is open and the
  request was rejected without being enqueued;
* ``draining`` — the server is shutting down and no longer accepts new
  work;
* ``internal`` — the policy engine raised while computing the decision.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ERR_BAD_REQUEST",
    "ERR_BREAKER_OPEN",
    "ERR_DRAINING",
    "ERR_INTERNAL",
    "ERR_SHARD_RESTARTED",
    "ERR_SHED",
    "ERR_TIMEOUT",
    "ERROR_TYPES",
    "IDEMPOTENT_KINDS",
    "KINDS",
    "RETRYABLE_ERRORS",
    "ProtocolError",
    "Request",
    "encode",
    "error_response",
    "ok_response",
    "parse_request",
]

#: Request kinds the server understands.
KINDS = ("access", "predict", "ping", "stats")

#: Kinds the dispatcher may safely re-dispatch after a shard failure.
IDEMPOTENT_KINDS = frozenset({"predict"})

ERR_BAD_REQUEST = "bad-request"
ERR_SHED = "shed"
ERR_TIMEOUT = "timeout"
ERR_SHARD_RESTARTED = "shard-restarted"
ERR_BREAKER_OPEN = "breaker-open"
ERR_DRAINING = "draining"
ERR_INTERNAL = "internal"

#: The full typed-error taxonomy.
ERROR_TYPES = (
    ERR_BAD_REQUEST,
    ERR_SHED,
    ERR_TIMEOUT,
    ERR_SHARD_RESTARTED,
    ERR_BREAKER_OPEN,
    ERR_DRAINING,
    ERR_INTERNAL,
)

#: Errors a *client* may retry verbatim without risking double effects.
RETRYABLE_ERRORS = frozenset(
    {ERR_SHED, ERR_BREAKER_OPEN, ERR_DRAINING}
)


class ProtocolError(ValueError):
    """A request line that cannot be parsed or validated.

    ``request_id`` carries the client id when one could be recovered, so
    the error response still correlates with the offending request.
    """

    def __init__(self, message: str, request_id: str | None = None) -> None:
        super().__init__(message)
        self.request_id = request_id


@dataclass
class Request:
    """A parsed, validated data-plane request.

    ``deadline_ms`` is the client's per-request deadline; None means
    "use the server default".  The remaining fields are filled in by the
    dispatcher (internal routing id, shard, absolute deadline).
    """

    id: str
    kind: str
    pc: int = 0
    address: int = 0
    write: bool = False
    core: int = 0
    deadline_ms: float | None = None
    #: Optional client span context (e.g. ``"<client-run-id>/<req-id>"``);
    #: propagated verbatim into the server's and shard's trace spans so a
    #: merged chrome trace can be joined back to the client's own logs.
    trace: str | None = None
    # -- dispatcher-internal routing state (never on the wire) --
    rid: int = field(default=-1, compare=False)
    shard: int = field(default=-1, compare=False)
    deadline: float = field(default=0.0, compare=False)


def _require_int(obj: dict, key: str, request_id: str | None) -> int:
    value = obj.get(key)
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ProtocolError(
            f"field {key!r} must be a non-negative integer", request_id
        )
    return value


def parse_request(line: str | bytes) -> Request:
    """Parse one NDJSON request line into a :class:`Request`.

    Raises :class:`ProtocolError` (with the client id when recoverable)
    on malformed JSON, unknown kinds, or invalid fields — the server
    turns that into a typed ``bad-request`` response, never a dropped
    line.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError:
            raise ProtocolError("request line is not valid UTF-8") from None
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"request line is not valid JSON: {error}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    raw_id = obj.get("id")
    if raw_id is None or isinstance(raw_id, (dict, list, bool)):
        raise ProtocolError("request must carry a scalar 'id'")
    request_id = str(raw_id)
    kind = obj.get("kind", "access")
    if kind not in KINDS:
        raise ProtocolError(
            f"unknown kind {kind!r}; expected one of {list(KINDS)}", request_id
        )
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)):
            raise ProtocolError("deadline_ms must be a number", request_id)
        if deadline_ms <= 0:
            raise ProtocolError("deadline_ms must be positive", request_id)
    request = Request(id=request_id, kind=kind, deadline_ms=deadline_ms)
    trace = obj.get("trace")
    if trace is not None:
        if isinstance(trace, (dict, list, bool)):
            raise ProtocolError("field 'trace' must be a scalar", request_id)
        request.trace = str(trace)
    if kind in ("access", "predict"):
        request.pc = _require_int(obj, "pc", request_id)
        request.address = _require_int(obj, "address", request_id)
        write = obj.get("write", False)
        if not isinstance(write, bool):
            raise ProtocolError("field 'write' must be a boolean", request_id)
        request.write = write
        core = obj.get("core", 0)
        if isinstance(core, bool) or not isinstance(core, int) or core < 0:
            raise ProtocolError("field 'core' must be a non-negative integer", request_id)
        request.core = core
    return request


def ok_response(request_id: str, kind: str, **fields: Any) -> dict:
    """A decision response; extra fields ride along verbatim."""
    return {"id": request_id, "ok": True, "kind": kind, **fields}


def error_response(
    request_id: str | None, error_type: str, message: str, **fields: Any
) -> dict:
    """A typed error response (one of :data:`ERROR_TYPES`)."""
    if error_type not in ERROR_TYPES:
        raise ValueError(f"unknown error type {error_type!r}")
    return {
        "id": request_id,
        "ok": False,
        "error": {
            "type": error_type,
            "message": message,
            "retryable": error_type in RETRYABLE_ERRORS,
        },
        **fields,
    }


def encode(obj: dict) -> bytes:
    """Serialize one response/request object as an NDJSON line."""
    return (json.dumps(obj, separators=(",", ":"), default=str) + "\n").encode("utf-8")
