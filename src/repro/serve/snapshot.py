"""Shard-state snapshots (``repro.serve.snapshot``).

A restarted shard should not come back amnesiac: Hawkeye/Glider spend
the whole run training per-PC state, and a cold restart would serve
noticeably worse decisions until re-warmed.  Shard workers therefore
pickle their engine (policy + cache) periodically; after a crash the
replacement worker loads the latest snapshot and resumes from there,
losing at most one snapshot interval of training.

Writes are crash-safe (temp file + ``os.replace`` + fsync, the
ArtifactStore discipline) and loads are corruption-tolerant: a torn or
unpicklable snapshot is quarantined to ``<path>.corrupt`` and the
worker cold-starts instead of crash-looping on its own state.
"""

from __future__ import annotations

import os
import pickle
import time
from pathlib import Path
from typing import Any

__all__ = ["SnapshotStore"]


class SnapshotStore:
    """Atomic pickle snapshots for one shard, newest-wins."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.saves = 0
        self.loads = 0
        self.corrupt = 0

    def save(self, state: Any, meta: dict | None = None) -> None:
        """Atomically persist ``state`` (plus a small metadata header)."""
        payload = {
            "meta": {"saved_unix": time.time(), **(meta or {})},
            "state": state,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f"{self.path.name}.tmp-{os.getpid()}")
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self.saves += 1

    def load(self) -> tuple[Any, dict] | None:
        """The newest ``(state, meta)``, or None (missing / corrupt)."""
        if not self.path.exists():
            return None
        try:
            with open(self.path, "rb") as handle:
                payload = pickle.load(handle)
            state = payload["state"]
            meta = payload.get("meta", {})
        except Exception:  # noqa: BLE001 — torn write, stale class, bad pickle
            self.corrupt += 1
            self._quarantine()
            return None
        self.loads += 1
        return state, meta

    def _quarantine(self) -> None:
        try:
            os.replace(self.path, self.path.with_name(self.path.name + ".corrupt"))
        except OSError:
            pass  # already gone, or unwritable dir: cold start either way
