"""Load generator and bench-report plumbing (``repro.serve.loadgen``).

Replays a :class:`~repro.traces.trace.Trace` against a running
prediction server at a configurable request rate and concurrency, and
produces the ``BENCH_serve.json`` accounting that the chaos suite and
the CI smoke job assert on.

The accounting is the point: every request the generator *sends* is
tracked by id until it resolves as a decision, a typed error, or —
only if the connection itself died — a connection-level loss.  The
invariant under test is::

    sent == decisions + typed_errors + connection_lost
    duplicates == 0

i.e. the server never silently drops and never double-answers, even
while shards are being SIGKILLed under load.
"""

from __future__ import annotations

import json
import socket
import statistics
import threading
import time
from dataclasses import dataclass, field

from .protocol import ERROR_TYPES, encode

__all__ = ["BENCH_SERVE_SCHEMA", "LoadConfig", "run_load", "validate_bench_serve"]

#: Schema tag of the load-generator report.
BENCH_SERVE_SCHEMA = "repro.serve.bench/v1"


@dataclass
class LoadConfig:
    """One load-generation run against a server."""

    host: str = "127.0.0.1"
    port: int = 0
    requests: int = 2000
    qps: float = 2000.0  # aggregate target rate across connections
    connections: int = 4
    deadline_ms: float | None = None
    predict_ratio: float = 0.0  # fraction of requests sent as 'predict'
    timeout_s: float = 30.0  # overall wait for outstanding responses
    #: Client-side span context root.  When set, every request carries
    #: ``trace = "<trace_context>/<request-id>"`` so server and shard
    #: spans in a merged chrome trace join back to this load run.
    trace_context: str | None = None


class _ConnState:
    """Per-connection accounting shared between writer and reader."""

    def __init__(self, conn_id: int) -> None:
        self.conn_id = conn_id
        self.sent: set[str] = set()
        self.resolved: dict[str, str] = {}  # id -> "ok" | error type
        self.latencies: list[float] = []
        self.sent_at: dict[str, float] = {}
        self.duplicates = 0
        self.lost = 0  # connection died with these outstanding
        self.send_errors = 0
        self.lock = threading.Lock()
        self.done = threading.Event()


def _writer(
    state: _ConnState,
    sock: socket.socket,
    trace_slice: list[tuple[int, int, bool]],
    config: LoadConfig,
) -> None:
    interval = config.connections / config.qps if config.qps > 0 else 0.0
    next_send = time.monotonic()
    for seq, (pc, address, is_write) in enumerate(trace_slice):
        if interval:
            now = time.monotonic()
            if now < next_send:
                time.sleep(next_send - now)
            next_send += interval
        request_id = f"c{state.conn_id}-{seq}"
        kind = (
            "predict"
            if config.predict_ratio and (seq % 1000) < config.predict_ratio * 1000
            else "access"
        )
        msg = {
            "id": request_id,
            "kind": kind,
            "pc": pc,
            "address": address,
            "write": is_write,
        }
        if config.deadline_ms is not None:
            msg["deadline_ms"] = config.deadline_ms
        if config.trace_context:
            msg["trace"] = f"{config.trace_context}/{request_id}"
        with state.lock:
            state.sent.add(request_id)
            state.sent_at[request_id] = time.monotonic()
        try:
            sock.sendall(encode(msg))
        except OSError:
            with state.lock:
                state.sent.discard(request_id)
                state.sent_at.pop(request_id, None)
                state.send_errors += 1
            return


def _reader(state: _ConnState, sock: socket.socket) -> None:
    try:
        stream = sock.makefile("rb")
        for line in stream:
            if not line.strip():
                continue
            try:
                response = json.loads(line)
            except json.JSONDecodeError:
                continue
            request_id = response.get("id")
            now = time.monotonic()
            outcome = (
                "ok"
                if response.get("ok")
                else response.get("error", {}).get("type", "unknown")
            )
            with state.lock:
                if request_id in state.resolved:
                    state.duplicates += 1
                    continue
                if request_id not in state.sent:
                    continue  # not ours (or pre-send race); ignore
                state.resolved[request_id] = outcome
                sent_at = state.sent_at.pop(request_id, None)
                if sent_at is not None:
                    state.latencies.append(now - sent_at)
                if len(state.resolved) == len(state.sent) and state.done.is_set():
                    return
    except OSError:
        pass


def _percentile(values: list[float], fraction: float) -> float | None:
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _fetch_stats(host: str, port: int, timeout: float = 5.0) -> dict | None:
    """One extra connection asking the server for its own counters."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.sendall(encode({"id": "loadgen-stats", "kind": "stats"}))
            stream = sock.makefile("rb")
            line = stream.readline()
        response = json.loads(line)
        return response if response.get("ok") else None
    except (OSError, json.JSONDecodeError, ValueError):
        return None


def run_load(trace, config: LoadConfig) -> dict:
    """Replay ``trace`` against the server; return the accounting report.

    ``trace`` is a :class:`repro.traces.trace.Trace` (or anything with
    ``pcs`` / ``addresses`` / ``is_write`` sequences).  The report is
    JSON-safe and satisfies :func:`validate_bench_serve`.
    """
    total = min(config.requests, len(trace.pcs))
    rows = [
        (int(trace.pcs[i]), int(trace.addresses[i]), bool(trace.is_write[i]))
        for i in range(total)
    ]
    per_conn = max(1, (total + config.connections - 1) // config.connections)
    states: list[_ConnState] = []
    threads: list[threading.Thread] = []
    sockets: list[socket.socket] = []
    started = time.monotonic()
    for conn_id in range(config.connections):
        chunk = rows[conn_id * per_conn : (conn_id + 1) * per_conn]
        if not chunk:
            break
        state = _ConnState(conn_id)
        states.append(state)
        sock = socket.create_connection(
            (config.host, config.port), timeout=config.timeout_s
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sockets.append(sock)
        reader = threading.Thread(
            target=_reader, args=(state, sock), daemon=True, name=f"load-r{conn_id}"
        )
        writer = threading.Thread(
            target=_writer,
            args=(state, sock, chunk, config),
            daemon=True,
            name=f"load-w{conn_id}",
        )
        reader.start()
        writer.start()
        threads.append(writer)
        state.reader_thread = reader  # type: ignore[attr-defined]
    for thread in threads:
        thread.join()
    for state in states:
        state.done.set()
    # Wait (bounded) for the stragglers to resolve.
    wait_deadline = time.monotonic() + config.timeout_s
    while time.monotonic() < wait_deadline:
        outstanding = 0
        for state in states:
            with state.lock:
                outstanding += len(state.sent) - len(state.resolved)
        if outstanding == 0:
            break
        time.sleep(0.05)
    elapsed = time.monotonic() - started
    server_stats = _fetch_stats(config.host, config.port)
    for sock in sockets:
        try:
            sock.close()
        except OSError:
            pass
    # -- aggregate ----------------------------------------------------------
    sent = resolved = duplicates = lost = send_errors = decisions = 0
    errors: dict[str, int] = {}
    latencies: list[float] = []
    for state in states:
        with state.lock:
            sent += len(state.sent)
            resolved += len(state.resolved)
            duplicates += state.duplicates
            send_errors += state.send_errors
            lost += len(state.sent) - len(state.resolved)
            latencies.extend(state.latencies)
            for outcome in state.resolved.values():
                if outcome == "ok":
                    decisions += 1
                else:
                    errors[outcome] = errors.get(outcome, 0) + 1
    typed_errors = sum(errors.values())
    report = {
        "schema": BENCH_SERVE_SCHEMA,
        "config": {
            "requests": config.requests,
            "qps": config.qps,
            "connections": config.connections,
            "deadline_ms": config.deadline_ms,
            "predict_ratio": config.predict_ratio,
        },
        "elapsed_s": round(elapsed, 4),
        "throughput_rps": round(sent / elapsed, 2) if elapsed > 0 else None,
        "sent": sent,
        "decisions": decisions,
        "typed_errors": typed_errors,
        "errors_by_type": dict(sorted(errors.items())),
        "connection_lost": lost,
        "duplicates": duplicates,
        "send_errors": send_errors,
        "accounted": decisions + typed_errors + lost == sent,
        "latency_ms": {
            "p50": _ms(_percentile(latencies, 0.50)),
            "p90": _ms(_percentile(latencies, 0.90)),
            "p99": _ms(_percentile(latencies, 0.99)),
            "max": _ms(max(latencies) if latencies else None),
            "mean": _ms(statistics.fmean(latencies) if latencies else None),
        },
        "server": _server_summary(server_stats),
    }
    return report


def _ms(seconds: float | None) -> float | None:
    return None if seconds is None else round(seconds * 1000.0, 3)


def _server_summary(stats_response: dict | None) -> dict | None:
    """Compress a ``stats`` response into the report's server section."""
    if not stats_response:
        return None
    counters = stats_response.get("counters", {})
    shards = stats_response.get("shards", [])
    return {
        "counters": counters,
        "shed_total": counters.get("shed_total", 0),
        "timeout_total": counters.get("timeout_total", 0),
        "shard_restarts": counters.get("shard_restarts", 0),
        "slow_client_drops": counters.get("slow_client_drops", 0),
        "shards": [
            {
                "shard": row.get("shard"),
                "restarts": row.get("restarts"),
                "breaker_state": row.get("breaker", {}).get("state"),
                "breaker_opens": row.get("breaker", {}).get("opens_total"),
            }
            for row in shards
        ],
    }


def validate_bench_serve(report: object) -> list[str]:
    """Structural + invariant check of a bench report; returns problems."""
    problems: list[str] = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema") != BENCH_SERVE_SCHEMA:
        problems.append(f"schema != {BENCH_SERVE_SCHEMA!r}")
    for key in ("sent", "decisions", "typed_errors", "connection_lost", "duplicates"):
        value = report.get(key)
        if not isinstance(value, int) or value < 0:
            problems.append(f"{key} must be a non-negative integer")
    if not problems:
        if (
            report["decisions"] + report["typed_errors"] + report["connection_lost"]
            != report["sent"]
        ):
            problems.append(
                "accounting broken: decisions + typed_errors + connection_lost "
                f"({report['decisions']} + {report['typed_errors']} + "
                f"{report['connection_lost']}) != sent ({report['sent']})"
            )
        if report["duplicates"]:
            problems.append(f"{report['duplicates']} duplicate responses")
    for error_type in report.get("errors_by_type", {}):
        if error_type not in ERROR_TYPES and error_type != "unknown":
            problems.append(f"unknown error type in report: {error_type!r}")
    latency = report.get("latency_ms")
    if not isinstance(latency, dict) or "p50" not in latency or "p99" not in latency:
        problems.append("latency_ms must carry p50/p99")
    return problems
