"""Shard worker processes (``repro.serve.shard``).

The service models one logical LLC partitioned by set index: shard
``k`` owns every set with ``set_index % num_shards == k``, so all
accesses to a set are serialized through one worker and the per-set
policy state is exactly what a monolithic simulation would produce.
Each worker holds a full-geometry :class:`~repro.cache.cache.
SetAssociativeCache` plus its policy instance (memory is dominated by
the sets actually touched) and processes request batches pulled from a
bounded queue.

Robustness hooks, shared with the batch pipeline
(:mod:`repro.robust.supervise`):

* the worker starts a heartbeat thread via :func:`repro.robust.
  supervise.start_heartbeat` — the parent watchdog SIGKILLs a shard
  whose heartbeat file stops changing (wedged, SIGSTOPped);
* per-request deadlines are enforced *inside* the worker too: a request
  that expired while queued gets a typed ``timeout`` response instead
  of burning compute, and a batch that exceeds its processing budget
  times out its remaining members (bounded worker iteration latency);
* a request whose computation raises produces a typed ``internal``
  error response — the worker never dies on a policy bug;
* the engine is pickled to a :class:`~repro.serve.snapshot.
  SnapshotStore` every ``snapshot_every`` requests, so a restarted
  shard re-warms from the latest snapshot instead of serving cold.
"""

from __future__ import annotations

import os
import queue as queue_mod
import threading
import time
from typing import Any

from ..cache.block import AccessType, CacheRequest
from ..cache.cache import SetAssociativeCache
from ..cache.config import CacheConfig
from ..policies.registry import make_policy
from ..robust.supervise import heartbeat_path, kill_process, start_heartbeat
from .protocol import ERR_INTERNAL, ERR_TIMEOUT, error_response, ok_response
from .snapshot import SnapshotStore

__all__ = ["ShardEngine", "ShardHandle", "shard_worker_main"]


class ShardEngine:
    """Policy + cache pair computing decisions for one shard's sets."""

    def __init__(
        self, shard_id: int, policy: str, policy_kwargs: dict, cache: CacheConfig
    ) -> None:
        self.shard_id = shard_id
        self.policy_name = policy
        self.policy = make_policy(policy, **(policy_kwargs or {}))
        self.cache = SetAssociativeCache(cache, self.policy)
        self.accesses = 0

    # -- reuse prediction -----------------------------------------------------

    def _predict_friendly(self, pc: int, core: int, address: int) -> dict | None:
        """Duck-typed reuse prediction from whatever predictor the policy has."""
        reuse = getattr(self.policy, "predict_reuse", None)
        if reuse is not None:  # frd family: quantized reuse-distance head
            try:
                return reuse(pc, address)
            except Exception:  # noqa: BLE001 — prediction is best-effort extra
                return None
        predictor = getattr(self.policy, "predictor", None)
        if predictor is not None and hasattr(predictor, "predict_friendly"):
            return {"friendly": bool(predictor.predict_friendly(pc))}
        isvm = getattr(self.policy, "isvm", None)
        if isvm is not None:  # Glider: ISVM over the core's current PCHR
            try:
                history = tuple(self.policy._pchr(core))
                prediction = isvm.predict(pc, history)
                return {
                    "friendly": bool(prediction.is_friendly),
                    "confidence": prediction.confidence.value,
                    "weight_sum": int(prediction.total),
                }
            except Exception:  # noqa: BLE001 — prediction is best-effort extra
                return None
        return None

    # -- request handling -----------------------------------------------------

    def handle(self, msg: dict) -> dict:
        """Compute the wire response for one routed request message."""
        kind = msg["kind"]
        pc, address, core = msg["pc"], msg["address"], msg.get("core", 0)
        if kind == "predict":
            return ok_response(
                msg["id"],
                "predict",
                shard=self.shard_id,
                prediction=self._predict_friendly(pc, core, address),
                cached=self.cache.probe(address),
            )
        request = CacheRequest(
            pc=pc,
            address=address,
            access_type=AccessType.STORE if msg.get("write") else AccessType.LOAD,
            core=core,
            access_index=self.accesses,
        )
        self.accesses += 1
        result = self.cache.access(request)
        evicted = None
        if result.evicted_tag >= 0:
            evicted = {
                "address": self.cache.line_address(
                    self.cache.set_index(address), result.evicted_tag
                ),
                "dirty": result.evicted_dirty,
                "pc": result.evicted_pc,
            }
        return ok_response(
            msg["id"],
            "access",
            shard=self.shard_id,
            hit=result.hit,
            way=result.way,
            bypassed=result.bypassed,
            evicted=evicted,
            prediction=self._predict_friendly(pc, core, address),
        )


def _drain_batch(in_q, first: Any, batch_max: int) -> tuple[list[dict], bool]:
    """Pull up to ``batch_max`` queued messages; True if a sentinel arrived."""
    batch = [first]
    while len(batch) < batch_max:
        try:
            item = in_q.get_nowait()
        except queue_mod.Empty:
            break
        if item is None:
            return batch, True
        batch.append(item)
    return batch, False


def shard_worker_main(
    shard_id: int,
    policy: str,
    policy_kwargs: dict,
    cache_params: dict,
    in_q,
    out_q,
    run_dir: str,
    heartbeat_interval: float,
    snapshot_path: str | None,
    snapshot_every: int,
    batch_max: int,
    batch_budget_s: float | None,
    chaos_delay_s: float = 0.0,
    trace_path: str | None = None,
    run_id: str | None = None,
    insight_path: str | None = None,
) -> None:
    """Entry point of one shard worker process.

    ``chaos_delay_s`` is a fault-injection knob in the spirit of
    :mod:`repro.robust.faults`: it inserts an artificial per-request
    compute delay so chaos tests can provoke queue-full storms and
    deadline expiries at low, deterministic request rates.

    ``trace_path`` enables span tracing: every handled request becomes a
    ``shard.request`` span, and at drain a ``shard.worker`` span covering
    the worker's whole lifetime is emitted so the request spans nest
    under it in a merged chrome trace.  All spans carry the *server's*
    ``run_id``, making the per-process JSONL files joinable.

    ``insight_path`` enables a per-shard decision recorder (labelled
    ``shard=<id>``): the reference policy hooks report into it, the
    worker ships rolling summaries to the parent as ``insight`` control
    messages (for live per-shard ``/metrics`` gauges), and the full
    artifact is written at drain.
    """
    start_heartbeat(run_dir, heartbeat_interval)
    tracer = None
    worker_start_us = 0.0
    if trace_path:
        from ..obs.trace import TraceLog

        tracer = TraceLog(trace_path, run_id=run_id)
        worker_start_us = time.time() * 1e6
    recorder = None
    if insight_path:
        from ..obs import insight as obs_insight

        recorder = obs_insight.enable(
            CacheConfig(**cache_params), labels={"shard": shard_id}
        )

    def publish_insight() -> None:
        if recorder is None:
            return
        try:
            out_q.put(
                {"ctrl": "insight", "shard": shard_id, "summary": recorder.summary()}
            )
        except Exception:  # noqa: BLE001 — telemetry is best-effort
            pass

    store = SnapshotStore(snapshot_path) if snapshot_path else None
    engine: ShardEngine | None = None
    warm = False
    if store is not None:
        loaded = store.load()
        if loaded is not None:
            state, _meta = loaded
            if isinstance(state, ShardEngine) and state.policy_name == policy:
                engine = state
                warm = True
    if engine is None:
        engine = ShardEngine(shard_id, policy, policy_kwargs, CacheConfig(**cache_params))
    out_q.put(
        {
            "ctrl": "ready",
            "shard": shard_id,
            "pid": os.getpid(),
            "warm": warm,
            "accesses": engine.accesses,
        }
    )

    def save_snapshot() -> None:
        if store is None:
            return
        try:
            store.save(engine, meta={"shard": shard_id, "accesses": engine.accesses})
        except Exception:  # noqa: BLE001 — snapshots are best-effort
            pass

    since_snapshot = 0
    while True:
        try:
            item = in_q.get()
        except (EOFError, OSError):
            return  # parent went away; nothing left to serve
        draining = item is None
        batch: list[dict] = []
        if not draining:
            batch, draining = _drain_batch(in_q, item, batch_max)
        responses = []
        batch_deadline = (
            time.monotonic() + batch_budget_s if batch_budget_s else None
        )
        for msg in batch:
            now = time.monotonic()
            if msg["deadline"] and now > msg["deadline"]:
                response = error_response(
                    msg["id"],
                    ERR_TIMEOUT,
                    "deadline expired while queued at the shard",
                    shard=shard_id,
                    stage="queue",
                )
            elif batch_deadline is not None and now > batch_deadline:
                response = error_response(
                    msg["id"],
                    ERR_TIMEOUT,
                    f"shard batch budget ({batch_budget_s:.3f}s) exhausted",
                    shard=shard_id,
                    stage="batch",
                )
            else:
                if chaos_delay_s > 0:
                    time.sleep(chaos_delay_s)
                try:
                    if tracer is None:
                        response = engine.handle(msg)
                    else:
                        with tracer.span(
                            "shard.request",
                            rid=msg["rid"],
                            id=msg["id"],
                            kind=msg["kind"],
                            shard=shard_id,
                            trace=msg.get("trace"),
                        ):
                            response = engine.handle(msg)
                except Exception as error:  # noqa: BLE001 — typed, never fatal
                    response = error_response(
                        msg["id"],
                        ERR_INTERNAL,
                        f"{type(error).__name__}: {error}",
                        shard=shard_id,
                    )
            responses.append({"rid": msg["rid"], "response": response})
        if responses:
            out_q.put(("batch", responses))
        since_snapshot += len(batch)
        if snapshot_every and since_snapshot >= snapshot_every:
            save_snapshot()
            publish_insight()
            since_snapshot = 0
        if draining:
            save_snapshot()
            publish_insight()
            if recorder is not None:
                try:
                    from ..obs import insight as obs_insight

                    obs_insight.save_artifact(
                        insight_path, recorder.to_artifact(run_id=run_id)
                    )
                except Exception:  # noqa: BLE001 — telemetry is best-effort
                    pass
            if tracer is not None:
                # Lifetime span: request spans emitted above fall inside
                # this window, so they nest under the worker in chrome.
                tracer.complete(
                    "shard.worker",
                    worker_start_us,
                    time.time() * 1e6 - worker_start_us,
                    shard=shard_id,
                    pid=os.getpid(),
                    policy=policy,
                )
                tracer.close()
            out_q.put({"ctrl": "drained", "shard": shard_id, "pid": os.getpid()})
            return


class ShardHandle:
    """Parent-side handle: process, queues, heartbeat view, restarts.

    Each (re)start is a *generation*: fresh queues (a SIGKILLed worker
    can leave a queue's internal lock held, poisoning it for any
    successor) and a fresh collector thread keyed to the generation.
    """

    def __init__(
        self,
        shard_id: int,
        mp_context,
        *,
        policy: str,
        policy_kwargs: dict,
        cache_params: dict,
        run_dir: str,
        snapshot_path: str | None,
        queue_depth: int,
        heartbeat_interval: float,
        snapshot_every: int,
        batch_max: int,
        batch_budget_s: float | None,
        chaos_delay_s: float = 0.0,
        trace_path: str | None = None,
        run_id: str | None = None,
        insight_path: str | None = None,
    ) -> None:
        self.shard_id = shard_id
        self._ctx = mp_context
        self._kwargs = dict(
            policy=policy,
            policy_kwargs=policy_kwargs,
            cache_params=cache_params,
            run_dir=run_dir,
            heartbeat_interval=heartbeat_interval,
            snapshot_path=snapshot_path,
            snapshot_every=snapshot_every,
            batch_max=batch_max,
            batch_budget_s=batch_budget_s,
            chaos_delay_s=chaos_delay_s,
            trace_path=trace_path,
            run_id=run_id,
            insight_path=insight_path,
        )
        self.run_dir = run_dir
        self.queue_depth = queue_depth
        self.generation = 0
        self.restarts = -1  # first start() brings it to 0
        self.process = None
        self.in_q = None
        self.out_q = None
        self.ready = threading.Event()
        self.drained = threading.Event()
        self.started_at = 0.0
        self.warm_starts = 0
        self._hb_seen: tuple[float, float] | None = None

    def start(self) -> None:
        k = self._kwargs
        self.generation += 1
        self.restarts += 1
        self.in_q = self._ctx.Queue(maxsize=self.queue_depth)
        self.out_q = self._ctx.Queue()
        self.ready = threading.Event()
        self.drained = threading.Event()
        self._hb_seen = None
        self.started_at = time.monotonic()
        self.process = self._ctx.Process(
            target=shard_worker_main,
            name=f"serve-shard-{self.shard_id}",
            daemon=True,
            args=(
                self.shard_id,
                k["policy"],
                k["policy_kwargs"],
                k["cache_params"],
                self.in_q,
                self.out_q,
                k["run_dir"],
                k["heartbeat_interval"],
                k["snapshot_path"],
                k["snapshot_every"],
                k["batch_max"],
                k["batch_budget_s"],
                k["chaos_delay_s"],
                k["trace_path"],
                k["run_id"],
                k["insight_path"],
            ),
        )
        self.process.start()

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def kill(self) -> None:
        if self.pid is not None:
            kill_process(self.pid)

    def heartbeat_stale(self, grace: float, now: float) -> bool:
        """True when the worker's heartbeat file stopped changing.

        Same observation discipline as the supervisor: staleness is
        measured from the last *observed* mtime change with the
        parent's monotonic clock, so wall-clock skew in the beat
        payload cannot trigger (or mask) a kill.
        """
        if not self.ready.is_set() or self.pid is None:
            return False
        try:
            mtime = heartbeat_path(self.run_dir, self.pid).stat().st_mtime
        except OSError:
            return now - self.started_at > grace
        if self._hb_seen is None or mtime != self._hb_seen[0]:
            self._hb_seen = (mtime, now)
            return False
        return now - self._hb_seen[1] > grace

    def enqueue(self, msg: dict) -> None:
        """Nonblocking put onto the bounded request queue (may raise Full)."""
        self.in_q.put_nowait(msg)
