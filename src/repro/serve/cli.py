"""``python -m repro.eval serve`` — daemon, load generator, benchmark.

Three subcommands:

``serve run``
    Start the prediction daemon in the foreground and print the bound
    data/admin ports (machine-greppable ``serve: listening ...`` line).
    SIGTERM or SIGINT triggers a graceful drain; the process exits 0
    only if every shard drained cleanly.

``serve load``
    Replay a synthetic workload trace against an *already running*
    server and write the accounting report (``--out``).  Exits nonzero
    if the accounting invariant fails (a request was silently dropped
    or answered twice).

``serve bench``
    Self-contained benchmark: starts an in-process server, runs a
    healthy load phase, optionally a chaos phase (``--chaos
    kill-shard`` SIGKILLs a shard mid-load), drains, and writes
    ``BENCH_serve.json`` with both phases' accounting plus the final
    server counters.  This is what CI's serve smoke job runs.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time

from ..traces import get_trace
from .loadgen import LoadConfig, run_load, validate_bench_serve
from .server import PredictionServer, ServeConfig

__all__ = ["main"]


def _add_server_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--policy", default="lru", help="registry policy name")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--sets", type=int, default=256, help="cache sets (power of 2)")
    parser.add_argument("--ways", type=int, default=16, help="cache associativity")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="data port (0: ephemeral)")
    parser.add_argument(
        "--admin-port", type=int, default=0, help="admin HTTP port (0: ephemeral)"
    )
    parser.add_argument(
        "--queue-depth", type=int, default=256,
        help="bounded per-shard request queue (backpressure threshold)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=200.0,
        help="default per-request deadline",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=0.2, metavar="SEC",
        help="shard worker heartbeat period",
    )
    parser.add_argument(
        "--heartbeat-grace", type=float, default=2.0, metavar="SEC",
        help="unchanged-heartbeat window before a shard is declared wedged",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="consecutive shard failures before the circuit breaker opens",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="directory for snapshots + crash journal (default: temp dir)",
    )
    parser.add_argument(
        "--chaos-delay-ms", type=float, default=0.0,
        help="fault injection: artificial per-request compute delay in shards",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="write per-process JSONL span traces into --store and merge "
        "them into one chrome://tracing file at drain",
    )
    parser.add_argument(
        "--insight", action="store_true",
        help="per-shard decision telemetry (online accuracy vs OPTgen), "
        "live on /metrics and written as artifacts into --store at drain",
    )


def _config_from(args) -> ServeConfig:
    return ServeConfig(
        policy=args.policy,
        shards=args.shards,
        cache_sets=args.sets,
        cache_ways=args.ways,
        host=args.host,
        port=args.port,
        admin_port=args.admin_port,
        queue_depth=args.queue_depth,
        default_deadline_ms=args.deadline_ms,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_grace=args.heartbeat_grace,
        breaker_threshold=args.breaker_threshold,
        store_dir=args.store,
        chaos_delay_ms=args.chaos_delay_ms,
        trace=args.trace,
        insight=args.insight,
    )


def _add_load_flags(parser: argparse.ArgumentParser, trace_alias: bool = False) -> None:
    # ``--trace`` stays as a compatibility alias on ``serve load`` only;
    # on ``serve bench`` it would collide with the span-tracing flag.
    workload_flags = ["--workload"] + (["--trace"] if trace_alias else [])
    parser.add_argument(
        *workload_flags, dest="workload", default="astar",
        help="workload name to replay",
    )
    parser.add_argument("--requests", type=int, default=2000)
    parser.add_argument("--qps", type=float, default=2000.0)
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument(
        "--request-deadline-ms", type=float, default=None,
        help="client-side per-request deadline (default: server default)",
    )
    parser.add_argument(
        "--predict-ratio", type=float, default=0.0,
        help="fraction of requests sent as idempotent 'predict'",
    )
    parser.add_argument(
        "--trace-context", default=None, metavar="CTX",
        help="client span-context root attached to every request "
        "(rides into the server's and shards' trace spans)",
    )


def _load_config(args, port: int, trace_context: str | None = None) -> LoadConfig:
    return LoadConfig(
        host=args.host,
        port=port,
        requests=args.requests,
        qps=args.qps,
        connections=args.connections,
        deadline_ms=args.request_deadline_ms,
        predict_ratio=args.predict_ratio,
        trace_context=trace_context or args.trace_context,
    )


def _merge_traces(args) -> None:
    """Merge the per-process JSONL traces a run left in ``--store``."""
    if not (args.trace and args.store):
        return
    from pathlib import Path

    from ..obs.trace import export_chrome

    store = Path(args.store)
    jsonls = sorted(store.glob("serve-trace-*.jsonl"))
    if not jsonls:
        return
    out = store / "serve-trace.chrome.json"
    count = export_chrome(jsonls, out)
    print(
        f"serve: merged {len(jsonls)} trace files ({count} events) -> {out}",
        flush=True,
    )


def _cmd_run(args) -> int:
    if (args.trace or args.insight) and not args.store:
        print(
            "serve: note: --trace/--insight artifacts land in the store dir; "
            "without --store they are deleted at drain",
            file=sys.stderr,
        )
    server = PredictionServer(_config_from(args))
    server.start()
    if not server.wait_ready(timeout=30.0):
        print("serve: shards failed to become ready", file=sys.stderr)
        server.drain()
        return 1
    print(
        f"serve: listening data={server.port} admin={server.admin_port} "
        f"policy={args.policy} shards={args.shards} pid={os.getpid()}",
        flush=True,
    )
    stop = threading.Event()

    def handle_signal(signum, frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, handle_signal)
    signal.signal(signal.SIGINT, handle_signal)
    stop.wait()
    print("serve: draining", flush=True)
    summary = server.drain()
    _merge_traces(args)
    counters = summary.get("stats", {}).get("counters", {})
    print(
        "serve: drained clean={clean} decisions={d} errors={e}".format(
            clean=summary.get("clean"),
            d=counters.get("decisions_total", 0),
            e=sum(v for k, v in counters.items() if k.startswith("errors_total")),
        ),
        flush=True,
    )
    return 0 if summary.get("clean") else 1


def _cmd_load(args) -> int:
    trace = get_trace(args.workload, length=max(args.requests, 1000))
    report = run_load(trace, _load_config(args, args.port))
    problems = validate_bench_serve(report)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    print(f"serve load: report -> {args.out}")
    print(
        "serve load: sent={sent} decisions={decisions} typed_errors={typed_errors} "
        "lost={connection_lost} dup={duplicates} p50={p50}ms p99={p99}ms".format(
            p50=report["latency_ms"]["p50"], p99=report["latency_ms"]["p99"], **{
                k: report[k]
                for k in ("sent", "decisions", "typed_errors",
                          "connection_lost", "duplicates")
            },
        )
    )
    if problems:
        for problem in problems:
            print(f"serve load: INVARIANT VIOLATION: {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args) -> int:
    trace = get_trace(args.workload, length=max(args.requests * 2, 1000))
    server = PredictionServer(_config_from(args))
    server.start()
    try:
        if not server.wait_ready(timeout=30.0):
            print("serve bench: shards failed to become ready", file=sys.stderr)
            return 1
        phases: dict[str, dict] = {}
        trace_context = server.run_id if args.trace else None
        print(f"serve bench: healthy phase ({args.requests} requests)")
        phases["healthy"] = run_load(
            trace, _load_config(args, server.port, trace_context)
        )
        if args.chaos != "none":
            chaos_thread = threading.Thread(
                target=_chaos_injector,
                args=(server, args.chaos, args.chaos_after_s),
                daemon=True,
            )
            print(
                f"serve bench: chaos phase ({args.chaos}, "
                f"{args.requests} requests)"
            )
            chaos_thread.start()
            phases["chaos"] = run_load(
                trace, _load_config(args, server.port, trace_context)
            )
            chaos_thread.join(timeout=10.0)
    finally:
        summary = server.drain()
    _merge_traces(args)
    report = {
        "schema": "repro.serve.bench/v1",
        "chaos_mode": args.chaos,
        "policy": args.policy,
        "shards": args.shards,
        "phases": phases,
        "drain": {
            "clean": summary.get("clean"),
            "counters": summary.get("stats", {}).get("counters", {}),
        },
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    print(f"serve bench: report -> {args.out}")
    exit_code = 0
    for phase_name, phase in phases.items():
        problems = validate_bench_serve(phase)
        status = "ok" if not problems else "; ".join(problems)
        print(
            f"serve bench [{phase_name}]: sent={phase['sent']} "
            f"decisions={phase['decisions']} typed_errors={phase['typed_errors']} "
            f"lost={phase['connection_lost']} p50={phase['latency_ms']['p50']}ms "
            f"p99={phase['latency_ms']['p99']}ms throughput="
            f"{phase['throughput_rps']}rps [{status}]"
        )
        if problems:
            exit_code = 1
    if not summary.get("clean"):
        print("serve bench: drain was not clean", file=sys.stderr)
        exit_code = 1
    return exit_code


def _chaos_injector(server: PredictionServer, mode: str, after_s: float) -> None:
    """SIGKILL (or SIGSTOP) a live shard partway into the chaos phase."""
    time.sleep(after_s)
    victim = next((h for h in server.shards if h.alive()), None)
    if victim is None or victim.pid is None:
        return
    if mode == "kill-shard":
        os.kill(victim.pid, signal.SIGKILL)
    elif mode == "stop-shard":
        os.kill(victim.pid, signal.SIGSTOP)
        # The watchdog SIGKILLs it once the heartbeat goes stale; the
        # SIGSTOP only needs to outlive the grace window.


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval serve", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="start the prediction daemon")
    _add_server_flags(run_parser)

    load_parser = sub.add_parser("load", help="replay a trace against a server")
    load_parser.add_argument("--host", default="127.0.0.1")
    load_parser.add_argument("--port", type=int, required=True)
    _add_load_flags(load_parser, trace_alias=True)
    load_parser.add_argument("--out", default="BENCH_serve.json")

    bench_parser = sub.add_parser(
        "bench", help="in-process server + healthy/chaos load phases"
    )
    _add_server_flags(bench_parser)
    _add_load_flags(bench_parser)
    bench_parser.add_argument("--out", default="BENCH_serve.json")
    bench_parser.add_argument(
        "--chaos", choices=["none", "kill-shard", "stop-shard"], default="none",
        help="fault to inject during the chaos phase",
    )
    bench_parser.add_argument(
        "--chaos-after-s", type=float, default=0.3,
        help="seconds into the chaos phase before the fault fires",
    )

    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "load":
        return _cmd_load(args)
    return _cmd_bench(args)


if __name__ == "__main__":
    raise SystemExit(main())
