"""Replacement-policy-as-a-service (``repro.serve``).

A long-running prediction daemon that serves per-access eviction /
insertion decisions and reuse predictions from any registry policy —
the "online deployment" framing of DEAP Cache and Learning Forward
Reuse Distance applied to our Glider/Hawkeye implementations.

The data plane is newline-delimited JSON over TCP; requests are routed
by set index to supervised shard worker processes, each owning the
policy and cache state for its slice of the set space.  The robustness
layer is the point:

* :mod:`repro.serve.protocol` — the wire format and the typed failure
  taxonomy (every submitted request ends in exactly one of {decision,
  typed error}; there are no silent drops);
* :mod:`repro.serve.breaker` — a per-shard circuit breaker (open after
  K consecutive failures, half-open probe, jittered backoff cooldowns
  derived from :class:`repro.robust.retry.RetryPolicy`);
* :mod:`repro.serve.shard` — shard worker processes with heartbeat
  files (reusing the :mod:`repro.robust.supervise` hooks), bounded
  request queues, per-request and per-batch deadlines, and periodic
  state snapshots;
* :mod:`repro.serve.snapshot` — atomic, corruption-tolerant snapshot
  store used to re-warm restarted shards;
* :mod:`repro.serve.server` — the daemon: dispatcher, watchdog/restart
  loop, backpressure and load shedding, graceful SIGTERM drain, and a
  ``/healthz`` / ``/readyz`` / ``/metrics`` admin endpoint;
* :mod:`repro.serve.loadgen` — a load generator that replays
  :mod:`repro.traces` workloads at a target QPS with request-id
  accounting, producing ``BENCH_serve.json``;
* :mod:`repro.serve.cli` — ``python -m repro.eval serve run|load|bench``.
"""

from .breaker import BreakerOpen, CircuitBreaker
from .loadgen import LoadConfig, run_load, validate_bench_serve
from .protocol import (
    ERROR_TYPES,
    ProtocolError,
    Request,
    error_response,
    ok_response,
    parse_request,
)
from .server import PredictionServer, ServeConfig
from .snapshot import SnapshotStore

__all__ = [
    "ERROR_TYPES",
    "BreakerOpen",
    "CircuitBreaker",
    "LoadConfig",
    "PredictionServer",
    "ProtocolError",
    "Request",
    "ServeConfig",
    "SnapshotStore",
    "error_response",
    "ok_response",
    "parse_request",
    "run_load",
    "validate_bench_serve",
]
