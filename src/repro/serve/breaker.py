"""Per-shard circuit breaker (``repro.serve.breaker``).

A shard that keeps failing (crashing, timing out) should not keep
receiving traffic: requests would pile up behind a corpse, burn their
deadlines, and mask the recovery.  The breaker is the standard
three-state machine:

* **closed** — requests flow; ``failure_threshold`` *consecutive*
  failures trip it open.
* **open** — requests are rejected immediately (typed ``breaker-open``
  errors) until the cooldown expires.  Cooldowns follow the jittered
  exponential backoff of :class:`repro.robust.retry.RetryPolicy`, so
  repeated trips back off deterministically per seed — the n-th
  consecutive open waits ``min(max_delay, base_delay * backoff**n) *
  (1 + jitter*u)`` seconds.
* **half-open** — after the cooldown one probe request is admitted; its
  success closes the breaker (and resets the backoff sequence), its
  failure re-opens it with the next, longer cooldown.

The breaker is thread-safe and clock-injectable: tests drive it with a
fake clock and assert the exact trip/probe/close sequence.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable

from ..robust.retry import RetryPolicy

__all__ = ["BreakerOpen", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class BreakerOpen(RuntimeError):
    """Raised by :meth:`CircuitBreaker.check` while the breaker is open."""


def _cooldowns(policy: RetryPolicy):
    """Endless cooldown sequence from a retry policy's backoff shape.

    Unlike :meth:`RetryPolicy.delays` this never exhausts (a breaker can
    trip arbitrarily many times); past ``max_attempts`` the delay stays
    pinned at the clamped maximum, still jittered.
    """
    rng = random.Random(policy.seed)
    attempt = 0
    while True:
        exponent = min(attempt, policy.max_attempts - 1)
        base = min(policy.max_delay, policy.base_delay * policy.backoff**exponent)
        yield base * (1.0 + policy.jitter * rng.random())
        attempt += 1


class CircuitBreaker:
    """Consecutive-failure circuit breaker with backoff cooldowns."""

    def __init__(
        self,
        failure_threshold: int = 5,
        retry_policy: RetryPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.retry_policy = retry_policy or RetryPolicy(
            base_delay=0.5, backoff=2.0, max_delay=15.0, jitter=0.5, max_attempts=6
        )
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._cooldowns = _cooldowns(self.retry_policy)
        self._open_until = 0.0
        self._probe_inflight = False
        self.opens_total = 0
        self.rejections_total = 0

    @property
    def state(self) -> str:
        """Current state, advancing open -> half-open when cooled down."""
        with self._lock:
            self._advance()
            return self._state

    def _advance(self) -> None:
        if self._state == OPEN and self._clock() >= self._open_until:
            self._state = HALF_OPEN
            self._probe_inflight = False

    def _trip(self) -> None:
        self._state = OPEN
        self._open_until = self._clock() + next(self._cooldowns)
        self._probe_inflight = False
        self.opens_total += 1

    def allow(self) -> bool:
        """May a request be dispatched to this shard right now?

        In half-open state exactly one caller gets True (the probe)
        until :meth:`record_success` / :meth:`record_failure` resolves
        it.
        """
        with self._lock:
            self._advance()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            self.rejections_total += 1
            return False

    def check(self) -> None:
        """:meth:`allow` that raises :class:`BreakerOpen` instead."""
        if not self.allow():
            raise BreakerOpen(
                f"circuit breaker is {self._state} "
                f"({self._consecutive_failures} consecutive failures)"
            )

    def record_success(self) -> None:
        """A dispatched request completed (decision *or* worker-typed error)."""
        with self._lock:
            self._advance()
            self._consecutive_failures = 0
            if self._state in (HALF_OPEN, OPEN):
                # Success closes the breaker and restarts the backoff
                # sequence for the next episode.
                self._state = CLOSED
                self._cooldowns = _cooldowns(self.retry_policy)
            self._probe_inflight = False

    def record_failure(self) -> None:
        """A dispatched request failed in a shard-health-relevant way."""
        with self._lock:
            self._advance()
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._trip()  # the probe failed: straight back to open
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def snapshot(self) -> dict:
        """JSON-safe state for ``stats`` responses and journal events."""
        with self._lock:
            self._advance()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "opens_total": self.opens_total,
                "rejections_total": self.rejections_total,
                "open_for_s": max(0.0, self._open_until - self._clock())
                if self._state == OPEN
                else 0.0,
            }
