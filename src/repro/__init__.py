"""repro — a full reproduction of *Applying Deep Learning to the Cache
Replacement Problem* (Glider), MICRO 2019.

Subpackages:

* :mod:`repro.traces`  — workload models and access-trace substrate.
* :mod:`repro.cache`   — set-associative caches and the 3-level hierarchy.
* :mod:`repro.optgen`  — Belady's MIN and the OPTgen streaming oracle.
* :mod:`repro.policies`— baseline replacement policies (LRU … Hawkeye).
* :mod:`repro.core`    — **Glider**, the paper's contribution.
* :mod:`repro.ml`      — NumPy LSTM+attention and the offline linear models.
* :mod:`repro.cpu`     — core/DRAM timing, IPC and weighted speedup.
* :mod:`repro.eval`    — one experiment per paper table/figure.
* :mod:`repro.conformance` — differential fuzzing, invariant checking,
  and the minimized regression corpus keeping engines and oracle honest.

Quick start::

    from repro.traces import get_trace
    from repro.cache import filter_to_llc_stream, simulate_llc
    from repro.core import GliderPolicy

    trace = get_trace("omnetpp", length=100_000)
    stream = filter_to_llc_stream(trace)
    stats = simulate_llc(stream, GliderPolicy())
    print(stats.summary())
"""

__version__ = "1.0.0"

from . import cache, conformance, core, cpu, eval, ml, optgen, policies, traces  # noqa: F401

__all__ = [
    "cache",
    "core",
    "cpu",
    "eval",
    "ml",
    "optgen",
    "policies",
    "traces",
    "__version__",
]
