"""OPTgen: Hawkeye's occupancy-vector reconstruction of MIN's decisions.

OPTgen [Jain & Lin 2016] answers, *in streaming order*, the question
"would Belady's MIN have served this reuse from the cache?" without
looking into the future.  For each set it keeps an *occupancy vector*:
entry ``t`` counts how many lines MIN keeps cached across time step
``t``.  When line X, last accessed at time ``t'``, is accessed again at
time ``t``, the reuse can be an OPT hit iff every occupancy entry in
``[t', t)`` is below the cache's associativity; if so the interval is
claimed (all entries incremented), otherwise the reuse is an OPT miss.

This greedy interval-claiming is exact: liveness intervals end at the
current access, so claiming earlier-ending intervals first (which
streaming order guarantees) is the classic optimal strategy for
interval scheduling with capacities.

Two variants are provided:

* :class:`OptGen` — unbounded history; exact MIN hit counts (verified
  against :func:`~repro.optgen.belady.simulate_belady` in the tests).
* the ``window`` parameter — bounded history as in Hawkeye's hardware,
  where the vector covers the last ``8 x associativity`` time steps and
  older reuses are conservatively declared misses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class OptGenDecision:
    """OPTgen's verdict for one access."""

    hit: bool  # would MIN have hit?
    first_access: bool  # cold access (no previous occurrence in window)


class SetOptGen:
    """Occupancy-vector OPTgen for a single cache set.

    Time advances by one step per access *to this set*.  ``window``
    bounds how far back an occupancy interval may reach; ``None`` means
    unbounded (exact).
    """

    def __init__(self, capacity: int, window: int | None = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.window = window
        self.time = 0
        # occupancy[i] covers time step (base_time + i).
        self.occupancy: deque[int] = deque()
        self.base_time = 0
        self.last_access: dict[int, int] = {}  # line -> time of last access
        self.opt_hits = 0
        self.opt_misses = 0

    def _trim(self) -> None:
        if self.window is None:
            return
        while len(self.occupancy) > self.window:
            self.occupancy.popleft()
            self.base_time += 1

    def access(self, line: int) -> OptGenDecision:
        """Process one access to ``line``; returns MIN's hit/miss verdict."""
        now = self.time
        prev = self.last_access.get(line)
        first = prev is None or prev < self.base_time
        hit = False
        if not first:
            # Check occupancy over [prev, now).
            lo = prev - self.base_time
            hi = now - self.base_time
            interval = [self.occupancy[i] for i in range(lo, hi)]
            if all(x < self.capacity for x in interval):
                hit = True
                for i in range(lo, hi):
                    self.occupancy[i] += 1
        if hit:
            self.opt_hits += 1
        else:
            self.opt_misses += 1
        self.last_access[line] = now
        self.occupancy.append(0)
        self.time += 1
        self._trim()
        if self.window is not None and len(self.last_access) > 4 * self.window:
            # Garbage-collect stale last-access entries outside the window.
            self.last_access = {
                l: t for l, t in self.last_access.items() if t >= self.base_time
            }
        return OptGenDecision(hit=hit, first_access=first)

    @property
    def accesses(self) -> int:
        return self.opt_hits + self.opt_misses

    @property
    def hit_rate(self) -> float:
        return self.opt_hits / max(1, self.accesses)


class OptGen:
    """OPTgen across all sets of a cache."""

    def __init__(
        self, num_sets: int, associativity: int, window: int | None = None
    ) -> None:
        self.num_sets = num_sets
        self.associativity = associativity
        self.sets = [SetOptGen(associativity, window) for _ in range(num_sets)]

    def access(self, line: int) -> OptGenDecision:
        return self.sets[line % self.num_sets].access(line)

    @property
    def opt_hits(self) -> int:
        return sum(s.opt_hits for s in self.sets)

    @property
    def opt_misses(self) -> int:
        return sum(s.opt_misses for s in self.sets)

    @property
    def hit_rate(self) -> float:
        total = self.opt_hits + self.opt_misses
        return self.opt_hits / max(1, total)
