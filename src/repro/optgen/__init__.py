"""Optimal-replacement oracle: exact Belady MIN and streaming OPTgen."""

from .belady import (
    INF,
    BeladyResult,
    belady_labels_for_trace,
    compute_next_use,
    simulate_belady,
)
from .optgen import OptGen, OptGenDecision, SetOptGen
from .sampler import OptGenSampler, TrainingEvent

__all__ = [
    "INF",
    "BeladyResult",
    "OptGen",
    "OptGenDecision",
    "OptGenSampler",
    "SetOptGen",
    "TrainingEvent",
    "belady_labels_for_trace",
    "compute_next_use",
    "simulate_belady",
]
