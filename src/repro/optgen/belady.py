"""Exact Belady MIN simulation and optimal labelling.

Belady's MIN algorithm [Belady 1966] evicts the line whose next use is
furthest in the future; it is optimal for hit-rate on a known trace.
The paper (following Hawkeye) uses MIN both as the performance upper
bound and as the *teacher*: each access is labelled cache-friendly (1)
if MIN would serve this line's next reuse from the cache, cache-averse
(0) otherwise.  Those labels are the supervised-learning targets of
every offline model (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

INF = np.iinfo(np.int64).max


def compute_next_use(keys: np.ndarray) -> np.ndarray:
    """For each position i, the next index j > i with keys[j] == keys[i].

    Positions with no later occurrence get ``INF``.
    """
    n = len(keys)
    next_use = np.full(n, INF, dtype=np.int64)
    last_pos: dict[int, int] = {}
    for i in range(n - 1, -1, -1):
        key = int(keys[i])
        if key in last_pos:
            next_use[i] = last_pos[key]
        last_pos[key] = i
    return next_use


@dataclass
class BeladyResult:
    """Outcome of an exact MIN simulation.

    Attributes:
        hits: Boolean per access — did MIN serve it from the cache?
        labels: Boolean per access — *optimal decision* for the accessed
            line: True (cache-friendly) iff the line's next reuse hits
            under MIN.  Accesses with no future reuse are labelled False.
        num_hits / num_misses: Aggregate counters.
    """

    hits: np.ndarray
    labels: np.ndarray

    @property
    def num_hits(self) -> int:
        return int(np.sum(self.hits))

    @property
    def num_misses(self) -> int:
        return len(self.hits) - self.num_hits

    @property
    def hit_rate(self) -> float:
        return self.num_hits / max(1, len(self.hits))

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate


def simulate_belady(
    lines: np.ndarray,
    num_sets: int,
    associativity: int,
) -> BeladyResult:
    """Run exact MIN over a stream of line numbers for a set-associative cache.

    The cache has ``num_sets`` sets of ``associativity`` ways; line i maps
    to set ``lines[i] % num_sets``.  Returns per-access hits and optimal
    labels (see :class:`BeladyResult`).

    Complexity: O(n * associativity) — each miss scans one set's ways for
    the furthest next use.
    """
    lines = np.asarray(lines, dtype=np.int64)
    n = len(lines)
    next_use = compute_next_use(lines)
    hits = np.zeros(n, dtype=bool)
    labels = np.zeros(n, dtype=bool)
    # Per set: dict mapping resident line -> index of the access that
    # inserted/last touched it (so we can label that access on reuse).
    resident: list[dict[int, int]] = [dict() for _ in range(num_sets)]
    # Per resident line, its next-use time (kept alongside for eviction).
    resident_next: list[dict[int, int]] = [dict() for _ in range(num_sets)]
    for i in range(n):
        line = int(lines[i])
        s = line % num_sets
        res = resident[s]
        res_next = resident_next[s]
        if line in res:
            hits[i] = True
            labels[res[line]] = True  # the previous access's reuse hit
            res[line] = i
            res_next[line] = int(next_use[i])
        else:
            if int(next_use[i]) == INF:
                # Never reused: MIN gains nothing by caching it, and the
                # label is averse either way.  Model it as a bypass, as
                # Hawkeye's OPTgen effectively does (a dead line never
                # raises occupancy for a would-be hit interval).
                continue
            if len(res) >= associativity:
                # Evict the victim with the furthest next use -- but only
                # cache the newcomer if its next use is sooner.
                victim_line, victim_next = None, -1
                for cand, cand_next in res_next.items():
                    if cand_next > victim_next:
                        victim_line, victim_next = cand, cand_next
                if victim_next <= int(next_use[i]):
                    # Newcomer is the furthest-reused: bypassing it is
                    # optimal (equivalent to inserting then evicting).
                    continue
                del res[victim_line]
                del res_next[victim_line]
            res[line] = i
            res_next[line] = int(next_use[i])
    return BeladyResult(hits=hits, labels=labels)


def belady_labels_for_trace(trace_or_lines, num_sets: int, associativity: int) -> np.ndarray:
    """Convenience wrapper returning only the optimal labels.

    Accepts a :class:`~repro.traces.trace.Trace` or a line-number array.
    """
    lines = (
        trace_or_lines.lines()
        if hasattr(trace_or_lines, "lines")
        else np.asarray(trace_or_lines)
    )
    return simulate_belady(lines, num_sets, associativity).labels
