"""Sampled-set OPTgen training infrastructure (Hawkeye/Glider style).

Online policies cannot run OPTgen on every set; Hawkeye (and Glider,
which keeps this machinery — Section 4.4 "Glider is trained based on the
behavior of a few sampled sets") samples 64 sets, reconstructs MIN's
decisions there with a windowed occupancy vector, and feeds each decision
to the predictor as a labelled example *for the context that inserted the
line* (its PC, and for Glider the PC-history snapshot at insertion).

:class:`OptGenSampler` is policy-agnostic: the policy passes an opaque
``context`` object along with each access, and gets back
:class:`TrainingEvent`s pairing the *previous* access's context with
MIN's label for that access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .optgen import SetOptGen


@dataclass(frozen=True)
class TrainingEvent:
    """One supervised example produced by the sampler.

    Attributes:
        pc: PC of the access being labelled (the line's previous access).
        context: Opaque context snapshot stored with that access.
        label: True if MIN would have cached the line until this reuse.
        line: The line number involved (diagnostics).
    """

    pc: int
    context: Any
    label: bool
    line: int


@dataclass
class _SampledLineInfo:
    pc: int
    context: Any
    time: int


class OptGenSampler:
    """Sampled-set OPTgen shared by Hawkeye and Glider.

    Args:
        num_sets: Number of sets in the cache being sampled.
        associativity: Ways per set (OPTgen capacity).
        num_sampled_sets: How many sets to sample (64 in the paper's
            configurations; clamped to ``num_sets``).
        window_factor: Occupancy-vector length as a multiple of the
            associativity (8 in Hawkeye's hardware design).
    """

    def __init__(
        self,
        num_sets: int,
        associativity: int,
        num_sampled_sets: int = 64,
        window_factor: int = 8,
        tracker_ways: int | None = None,
    ) -> None:
        num_sampled_sets = min(num_sampled_sets, num_sets)
        stride = max(1, num_sets // num_sampled_sets)
        self.sampled_sets = {i * stride for i in range(num_sampled_sets)}
        self.associativity = associativity
        self.num_sets = num_sets
        window = window_factor * associativity
        self._optgen: dict[int, SetOptGen] = {
            s: SetOptGen(associativity, window) for s in self.sampled_sets
        }
        self._lines: dict[int, dict[int, _SampledLineInfo]] = {
            s: {} for s in self.sampled_sets
        }
        self._window = window
        # The hardware sampler tracks a bounded number of addresses per
        # sampled set; replacing the LRU entry trains its context
        # cache-averse.  The tracker must cover at least the occupancy
        # window — a smaller tracker would detrain reuses the OPTgen
        # vector could still claim as hits, silently capping the
        # learnable reuse distance.
        self.tracker_ways = tracker_ways if tracker_ways is not None else window
        self.events_produced = 0

    def is_sampled(self, set_index: int) -> bool:
        return set_index in self.sampled_sets

    def access(self, line: int, pc: int, context: Any = None) -> list[TrainingEvent]:
        """Process a demand access; returns training events (possibly empty).

        ``line`` is the global line number; non-sampled sets return no
        events and cost nothing.
        """
        set_index = line % self.num_sets
        if set_index not in self.sampled_sets:
            return []
        optgen = self._optgen[set_index]
        tracked = self._lines[set_index]
        decision = optgen.access(line)
        events: list[TrainingEvent] = []
        info = tracked.get(line)
        if info is not None and not decision.first_access:
            events.append(
                TrainingEvent(pc=info.pc, context=info.context, label=decision.hit, line=line)
            )
            self.events_produced += 1
        elif info is not None and decision.first_access:
            # The previous access aged out of the occupancy window: MIN's
            # verdict is conservatively "miss" for it (Hawkeye detrains
            # these through the eviction path instead; we surface it).
            events.append(
                TrainingEvent(pc=info.pc, context=info.context, label=False, line=line)
            )
            self.events_produced += 1
        tracked[line] = _SampledLineInfo(pc=pc, context=context, time=optgen.time)
        # Hardware-sampler eviction: entries whose last access aged out of
        # the occupancy window can never be claimed as an OPT hit anymore,
        # and entries displaced from the bounded tracker were not reused
        # in time — both train *cache-averse* on the way out (Hawkeye
        # detrains on sampler evictions).
        horizon = optgen.base_time
        stale = [l for l, i in tracked.items() if i.time < horizon]
        if len(tracked) > self.tracker_ways:
            overflow = sorted(tracked, key=lambda l: tracked[l].time)
            stale.extend(
                l for l in overflow[: len(tracked) - self.tracker_ways]
                if l not in stale and l != line
            )
        for old in stale:
            info = tracked.pop(old)
            events.append(
                TrainingEvent(
                    pc=info.pc, context=info.context, label=False, line=old
                )
            )
            self.events_produced += 1
        return events

    def opt_hit_rate(self) -> float:
        """MIN's hit rate over the sampled sets (used for set dueling)."""
        hits = sum(g.opt_hits for g in self._optgen.values())
        total = sum(g.accesses for g in self._optgen.values())
        return hits / max(1, total)

    def occupancy_histogram(self) -> dict[int, int]:
        """Occupancy-level -> count over every sampled set's current
        occupancy vector (Figure 6 territory: how full OPT's cache is).
        """
        histogram: dict[int, int] = {}
        for optgen in self._optgen.values():
            for level in optgen.occupancy:
                histogram[level] = histogram.get(level, 0) + 1
        return histogram
