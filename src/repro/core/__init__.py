"""Glider — the paper's primary contribution.

* :class:`~repro.core.glider.GliderPolicy` / ``GliderConfig`` — the
  online replacement policy (ISVM + PCHR over Hawkeye's machinery).
* :class:`~repro.core.isvm.ISVMTable` — the Integer SVM predictor.
* :class:`~repro.core.features.PCHistoryRegister` and the k-sparse
  feature helpers.
"""

from .features import (
    PCHistoryRegister,
    hash_pc,
    k_sparse_history,
    k_sparse_vector,
)
from .glider import DEFAULT_K, GliderConfig, GliderPolicy
from .isvm import (
    AVERSE_SUM,
    HIGH_CONFIDENCE_SUM,
    ISVM,
    Confidence,
    ISVMTable,
    Prediction,
    THRESHOLD_CANDIDATES,
)

__all__ = [
    "AVERSE_SUM",
    "Confidence",
    "DEFAULT_K",
    "GliderConfig",
    "GliderPolicy",
    "HIGH_CONFIDENCE_SUM",
    "ISVM",
    "ISVMTable",
    "PCHistoryRegister",
    "Prediction",
    "THRESHOLD_CANDIDATES",
    "hash_pc",
    "k_sparse_history",
    "k_sparse_vector",
]
