"""The Glider cache replacement policy — the paper's contribution.

Glider = Hawkeye's structure (OPTgen-labelled training on sampled sets,
RRPV-managed insertion/eviction, detraining on premature evictions) with
the per-PC counter predictor replaced by the ISVM over the unordered
history of the last 5 unique PCs (Sections 4.3–4.4).

Insertion priorities (Section 4.4, "Prediction"):

* weight sum >= 60  -> cache-friendly, high confidence  -> RRPV 0
* 0 <= sum < 60     -> cache-friendly, low confidence   -> RRPV 2
* sum < 0           -> cache-averse                     -> RRPV 7
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..cache.block import AccessType, CacheLine, CacheRequest
from ..cache.policy import ReplacementPolicy
from ..obs import insight as obs_insight
from ..optgen.sampler import OptGenSampler
from .features import PCHistoryRegister
from .isvm import Confidence, ISVMTable, Prediction

#: policy_state keys.
RRPV_KEY = "glider_rrpv"
FRIENDLY_KEY = "glider_friendly"
CONTEXT_KEY = "glider_context"

MAX_RRPV = 7
MEDIUM_RRPV = 2

#: Default number of unique PCs tracked per core (Table 5: k = 5).
DEFAULT_K = 5


@dataclass(frozen=True)
class GliderConfig:
    """Hyper-parameters of the Glider policy (paper defaults)."""

    k: int = DEFAULT_K
    table_bits: int = 11  # 2048 tracked PCs
    weight_hash_bits: int = 4  # 16 weights per ISVM
    threshold: int = 30
    # The paper adapts θ over {0,30,100,300,3000}; at our trace scale the
    # online exploration's transient damage outweighs the benefit (the
    # paper itself notes the choice matters little for multi-core), so
    # the default is the fixed middle candidate.  Ablated in benchmarks/.
    adaptive_threshold: bool = False
    num_sampled_sets: int = 64
    window_factor: int = 8
    # Sampler address-tracker entries per sampled set; None = one per
    # occupancy-window step.  A tracker smaller than the window detrains
    # reuses OPTgen could still claim, capping the learnable reuse
    # distance (ablated in benchmarks/test_ablations.py).
    tracker_ways: int | None = None
    detrain_on_eviction: bool = True
    confidence_insertion: bool = True  # three-band RRPV insertion


@dataclass(frozen=True)
class _SampledContext:
    """Snapshot stored with each sampled access for later training."""

    history: tuple[int, ...]
    predicted_friendly: bool


class GliderPolicy(ReplacementPolicy):
    """Glider: ISVM-predicted insertion over Hawkeye's RRIP machinery."""

    name = "glider"

    def __init__(self, config: GliderConfig | None = None) -> None:
        super().__init__()
        self.config = config or GliderConfig()
        self.isvm = ISVMTable(
            table_bits=self.config.table_bits,
            weight_hash_bits=self.config.weight_hash_bits,
            threshold=self.config.threshold,
            adaptive=self.config.adaptive_threshold,
        )
        self.pchr: dict[int, PCHistoryRegister] = {}
        self.sampler: OptGenSampler | None = None
        self.prediction_checks = 0
        self.prediction_correct = 0
        # Pre-insertion PCHR snapshot for the access currently in flight
        # (set by on_access, consumed by on_hit/on_fill/victim).
        self._inflight_context: tuple[int, ...] | None = None
        self._inflight_key: tuple[int, int] | None = None

    def attach(self, cache) -> None:
        super().attach(cache)
        self.sampler = OptGenSampler(
            num_sets=cache.num_sets,
            associativity=cache.associativity,
            num_sampled_sets=self.config.num_sampled_sets,
            window_factor=self.config.window_factor,
            tracker_ways=self.config.tracker_ways,
        )

    # -- history/context ---------------------------------------------------
    def _pchr(self, core: int) -> PCHistoryRegister:
        register = self.pchr.get(core)
        if register is None:
            register = PCHistoryRegister(self.config.k)
            self.pchr[core] = register
        return register

    def _predict(self, request: CacheRequest) -> Prediction:
        """Prediction for the in-flight access.

        The context is the PCHR *before* the current PC was inserted —
        on_access stashes it so that prediction, training and detraining
        all see the identical feature for one access.
        """
        context = self._inflight_context
        if context is None or self._inflight_key != (request.pc, request.core):
            context = self._pchr(request.core).snapshot()
        return self.isvm.predict(request.pc, context)

    def _context_for(self, request: CacheRequest) -> tuple[int, ...]:
        context = self._inflight_context
        if context is None or self._inflight_key != (request.pc, request.core):
            return self._pchr(request.core).snapshot()
        return context

    @property
    def online_accuracy(self) -> float:
        """Fraction of sampler-labelled accesses predicted correctly
        (the paper's Figure 10 metric)."""
        return self.prediction_correct / max(1, self.prediction_checks)

    # -- training ---------------------------------------------------------------
    def _train(self, pc: int, context: _SampledContext, label: bool) -> None:
        self.isvm.train(pc, context.history, cache_friendly=label)
        self.prediction_checks += 1
        if context.predicted_friendly == label:
            self.prediction_correct += 1

    # -- insertion helpers ----------------------------------------------------------
    def _insert(self, line: CacheLine, set_index: int, prediction: Prediction) -> None:
        line.policy_state[FRIENDLY_KEY] = prediction.is_friendly
        line.policy_state["glider_high_conf"] = (
            prediction.confidence is Confidence.FRIENDLY_HIGH
        )
        if prediction.confidence is Confidence.AVERSE:
            line.policy_state[RRPV_KEY] = MAX_RRPV
            return
        if (
            prediction.confidence is Confidence.FRIENDLY_LOW
            and self.config.confidence_insertion
        ):
            line.policy_state[RRPV_KEY] = MEDIUM_RRPV
        else:
            line.policy_state[RRPV_KEY] = 0
        # Hawkeye-style ageing of other friendly lines, capped below the
        # averse band so averse lines always evict first.
        for other in self.cache.sets[set_index]:
            if other is line or not other.valid:
                continue
            if other.policy_state.get(FRIENDLY_KEY, False):
                rrpv = other.policy_state.get(RRPV_KEY, 0)
                other.policy_state[RRPV_KEY] = min(MAX_RRPV - 1, rrpv + 1)

    # -- hooks ------------------------------------------------------------------------
    def on_access(self, set_index: int, request: CacheRequest) -> None:
        if request.access_type is AccessType.WRITEBACK:
            return
        # Snapshot the PCHR *before* inserting the current PC: the
        # prediction context is the history leading up to this access.
        history = self._pchr(request.core).snapshot()
        self._inflight_context = history
        self._inflight_key = (request.pc, request.core)
        if self.sampler is not None:
            prediction = self.isvm.predict(request.pc, history)
            context = _SampledContext(
                history=history, predicted_friendly=prediction.is_friendly
            )
            line = request.address >> 6
            recorder = obs_insight.get_recorder()
            if recorder is not None:
                recorder.on_demand_access(
                    line,
                    request.pc,
                    prediction.is_friendly,
                    margin=prediction.total,
                )
            for event in self.sampler.access(line, request.pc, context):
                self._train(event.pc, event.context, event.label)
        self._pchr(request.core).insert(request.pc)

    def on_hit(self, set_index: int, way: int, request: CacheRequest) -> None:
        if request.access_type is AccessType.WRITEBACK:
            return
        line = self.cache.sets[set_index][way]
        prediction = self._predict(request)
        line.policy_state[FRIENDLY_KEY] = prediction.is_friendly
        line.policy_state["glider_high_conf"] = (
            prediction.confidence is Confidence.FRIENDLY_HIGH
        )
        line.policy_state[RRPV_KEY] = 0 if prediction.is_friendly else MAX_RRPV
        line.pc = request.pc
        if self.config.detrain_on_eviction:
            line.policy_state[CONTEXT_KEY] = self._context_for(request)

    def victim(
        self, set_index: int, request: CacheRequest, ways: Sequence[CacheLine]
    ) -> int:
        invalid = self.first_invalid(ways)
        if invalid is not None:
            return invalid
        victim_way = None
        for way, line in enumerate(ways):
            if line.policy_state.get(RRPV_KEY, MAX_RRPV) >= MAX_RRPV:
                victim_way = way
                break
        if victim_way is None:
            victim_way = max(
                range(len(ways)), key=lambda w: ways[w].policy_state.get(RRPV_KEY, 0)
            )
            if self.config.detrain_on_eviction:
                line = ways[victim_way]
                context = line.policy_state.get(CONTEXT_KEY)
                # A predicted-friendly line evicted before reuse refutes the
                # prediction: detrain its insertion context (Hawkeye's rule).
                # This feedback loop is what produces scan resistance — mass
                # demotion of a thrashing working set until a resident subset
                # survives.
                if context is not None and line.policy_state.get(FRIENDLY_KEY):
                    self.isvm.train(line.pc, context, cache_friendly=False)
        recorder = obs_insight.get_recorder()
        if recorder is not None:
            line = ways[victim_way]
            recorder.on_eviction(
                self.cache.line_address(set_index, line.tag) >> 6,
                predicted_friendly=line.policy_state.get(FRIENDLY_KEY),
                rrpv=line.policy_state.get(RRPV_KEY),
                pc=line.pc,
            )
        return victim_way

    def on_fill(self, set_index: int, way: int, request: CacheRequest) -> None:
        line = self.cache.sets[set_index][way]
        if request.access_type is AccessType.WRITEBACK:
            line.policy_state[FRIENDLY_KEY] = False
            line.policy_state[RRPV_KEY] = MAX_RRPV
            return
        prediction = self._predict(request)
        self._insert(line, set_index, prediction)
        if self.config.detrain_on_eviction:
            line.policy_state[CONTEXT_KEY] = self._context_for(request)

    def reset(self) -> None:
        self.isvm.reset()
        self.pchr.clear()
        if self.cache is not None:
            self.attach(self.cache)
        self.prediction_checks = 0
        self.prediction_correct = 0
        self._inflight_context = None
        self._inflight_key = None

    # -- budget accounting (Section 5.4) -------------------------------------------
    def predictor_storage_bytes(self) -> int:
        """ISVM table bytes (32.8 KB in the paper's configuration)."""
        return self.isvm.storage_bytes()

    # -- observability ---------------------------------------------------------------
    def introspect(self) -> dict:
        """Internal signals for the observability layer (JSON-safe):
        prediction confusion, ISVM weight health, OPTgen occupancy."""
        health = self.isvm.health()
        payload = {
            "prediction_checks": self.prediction_checks,
            "prediction_correct": self.prediction_correct,
            "online_accuracy": self.online_accuracy,
            "threshold": self.isvm.threshold,
            "isvm_health": {
                "num_entries": health.num_entries,
                "active_entries": health.active_entries,
                "active_weights": health.active_weights,
                "saturated_weights": health.saturated_weights,
                "max_abs_weight": health.max_abs_weight,
                "saturated_fraction": health.saturated_fraction,
            },
        }
        if self.sampler is not None:
            payload["optgen_events"] = self.sampler.events_produced
            payload["optgen_hit_rate"] = self.sampler.opt_hit_rate()
            payload["optgen_occupancy"] = self.sampler.occupancy_histogram()
        return payload
