"""The Integer SVM (ISVM) predictor — Glider's replacement for Hawkeye's
per-PC counters.

Hardware organisation (Section 4.4, Figure 8):

* an **ISVM table**: a direct-mapped table indexed by a hash of the
  *current* PC; each entry is one ISVM consisting of 16 signed 8-bit
  weights;
* each PC in the PC History Register is hashed to 4 bits, selecting one
  of the entry's 16 weights; prediction sums the selected weights.

Training (Section 4.4, "Training"): when OPTgen says the line should
have been cached, the selected weights are incremented by 1, otherwise
decremented — *unless* the current sum already exceeds the training
threshold θ, the perceptron-style update gate that prevents over-
training (Fact 1 shows this integer rule is gradient descent on the
hinge loss with learning rate 1/n).  Glider adaptively picks θ from
{0, 30, 100, 300, 3000}.

Prediction (Section 4.4, "Prediction"): sum >= 60 → cache-friendly with
high confidence; sum < 0 → cache-averse; otherwise friendly with low
confidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

from .features import hash_pc

#: The candidate training thresholds Glider adapts over (Section 4.4).
THRESHOLD_CANDIDATES = (0, 30, 100, 300, 3000)

#: Prediction confidence thresholds (Section 4.4).
HIGH_CONFIDENCE_SUM = 60
AVERSE_SUM = 0


class Confidence(Enum):
    """Three-way prediction outcome mapped to insertion priorities."""

    FRIENDLY_HIGH = "friendly_high"  # sum >= 60  -> RRPV 0
    FRIENDLY_LOW = "friendly_low"  # 0 <= sum < 60 -> RRPV 2
    AVERSE = "averse"  # sum < 0 -> RRPV 7

    @property
    def is_friendly(self) -> bool:
        return self is not Confidence.AVERSE


@dataclass
class Prediction:
    """An ISVM prediction: raw weight sum plus its confidence band."""

    total: int
    confidence: Confidence

    @property
    def is_friendly(self) -> bool:
        return self.confidence.is_friendly


class ISVM:
    """One integer SVM: 16 signed 8-bit weights, one per 4-bit PC hash.

    The weight count is configurable (``1 << weight_hash_bits``) for the
    aliasing ablation; the paper's hardware uses 16.
    """

    __slots__ = ("weights",)

    NUM_WEIGHTS = 16
    WEIGHT_MIN = -128
    WEIGHT_MAX = 127

    def __init__(self, num_weights: int = NUM_WEIGHTS) -> None:
        self.weights = [0] * num_weights

    def total(self, indices: Iterable[int]) -> int:
        return sum(self.weights[i] for i in indices)

    def update(self, indices: Iterable[int], delta: int) -> None:
        for i in indices:
            w = self.weights[i] + delta
            self.weights[i] = max(self.WEIGHT_MIN, min(self.WEIGHT_MAX, w))


@dataclass
class ISVMTableStats:
    """Training/prediction telemetry for accuracy accounting."""

    trainings: int = 0
    gated_updates: int = 0  # updates skipped by the threshold rule
    predictions: int = 0


@dataclass(frozen=True)
class ISVMHealth:
    """Saturation/health snapshot of an ISVM table.

    A weight pinned at WEIGHT_MIN/WEIGHT_MAX can no longer move in one
    direction, so a table whose active entries are mostly saturated has
    silently stopped learning — the counter-state failure mode the
    robustness guards watch for.
    """

    num_entries: int
    active_entries: int  # entries with any non-zero weight
    active_weights: int  # total weights across active entries
    saturated_weights: int
    max_abs_weight: int

    @property
    def saturated_fraction(self) -> float:
        """Saturated share of the weights that have ever been trained."""
        return self.saturated_weights / max(1, self.active_weights)

    def healthy(self, max_saturated_fraction: float = 0.25) -> bool:
        return self.saturated_fraction <= max_saturated_fraction


class ISVMTable:
    """Direct-mapped table of per-PC ISVMs plus the adaptive threshold.

    Args:
        table_bits: log2 of the number of tracked PCs (11 -> 2048, the
            paper's budget).
        weight_hash_bits: Width of the per-history-PC hash (4 -> 16
            weights per ISVM).
        threshold: Initial training threshold; when ``adaptive`` is set
            the table re-selects from :data:`THRESHOLD_CANDIDATES` based
            on recent training accuracy.
    """

    def __init__(
        self,
        table_bits: int = 11,
        weight_hash_bits: int = 4,
        threshold: int = 30,
        adaptive: bool = True,
        adapt_interval: int = 512,
    ) -> None:
        self.table_bits = table_bits
        self.weight_hash_bits = weight_hash_bits
        self.threshold = threshold
        self.adaptive = adaptive
        self.adapt_interval = adapt_interval
        self._table: list[ISVM] = [
            ISVM(1 << weight_hash_bits) for _ in range(1 << table_bits)
        ]
        self.stats = ISVMTableStats()
        # Adaptive-threshold bookkeeping: windowed training accuracy per
        # candidate, explored round-robin.
        self._window_correct = 0
        self._window_total = 0
        self._candidate_scores: dict[int, float] = {}
        self._candidate_cursor = (
            THRESHOLD_CANDIDATES.index(threshold)
            if threshold in THRESHOLD_CANDIDATES
            else 0
        )

    # -- indexing ------------------------------------------------------------
    def _entry(self, pc: int) -> ISVM:
        # Direct-mapped by the PC's low bits with the 4-byte-alignment
        # bits dropped — how hardware predictor tables are indexed.  For
        # programs with <= 2^table_bits static loads this is collision-
        # free, unlike a scrambling hash which pays birthday collisions.
        return self._table[(pc >> 2) & ((1 << self.table_bits) - 1)]

    def _weight_indices(self, history: Sequence[int]) -> list[int]:
        return [hash_pc(pc, self.weight_hash_bits) for pc in history]

    # -- prediction -------------------------------------------------------------
    def high_confidence_cut(self) -> int:
        """Weight sum above which a friendly prediction is high-confidence.

        The paper uses 60 with its simulated thresholds; since the
        training gate stops sums just past the active threshold θ, the
        cut is clamped so that a fully-trained context (sum ≈ θ) still
        qualifies as high confidence when θ < 60.
        """
        return min(HIGH_CONFIDENCE_SUM, max(1, self.threshold))

    def predict(self, pc: int, history: Sequence[int]) -> Prediction:
        """Predict the caching behaviour of ``pc`` given the PCHR contents."""
        self.stats.predictions += 1
        total = self._entry(pc).total(self._weight_indices(history))
        if total >= self.high_confidence_cut():
            confidence = Confidence.FRIENDLY_HIGH
        elif total < AVERSE_SUM:
            confidence = Confidence.AVERSE
        else:
            confidence = Confidence.FRIENDLY_LOW
        return Prediction(total=total, confidence=confidence)

    # -- training ------------------------------------------------------------------
    def train(self, pc: int, history: Sequence[int], cache_friendly: bool) -> None:
        """Apply one OPTgen-labelled update for (pc, history)."""
        self.stats.trainings += 1
        entry = self._entry(pc)
        indices = self._weight_indices(history)
        total = entry.total(indices)
        # Accuracy window for the adaptive threshold.
        predicted_friendly = total >= AVERSE_SUM
        self._window_total += 1
        if predicted_friendly == cache_friendly:
            self._window_correct += 1
        # Perceptron gate: if the sum is already confidently past the
        # margin in the right direction, skip the update.
        if cache_friendly and total > self.threshold:
            self.stats.gated_updates += 1
        elif not cache_friendly and total < -self.threshold:
            self.stats.gated_updates += 1
        else:
            entry.update(indices, 1 if cache_friendly else -1)
        if self.adaptive and self._window_total >= self.adapt_interval:
            self._adapt()

    def _adapt(self) -> None:
        """One-time exploration of the candidate thresholds.

        Each window scores the threshold that was live during it; after
        every candidate has one score, the best is locked in.  (The paper
        leaves the selection mechanism unspecified; a one-shot sweep
        avoids paying exploration cost for the rest of the run, and
        matches the observation that the choice matters little for
        multi-core workloads.)
        """
        accuracy = self._window_correct / max(1, self._window_total)
        self._window_correct = 0
        self._window_total = 0
        if self.threshold not in self._candidate_scores:
            self._candidate_scores[self.threshold] = accuracy
        unexplored = [t for t in THRESHOLD_CANDIDATES if t not in self._candidate_scores]
        if unexplored:
            self.threshold = unexplored[0]
        else:
            self.threshold = max(
                self._candidate_scores, key=lambda t: self._candidate_scores[t]
            )

    def reset(self) -> None:
        self._table = [
            ISVM(1 << self.weight_hash_bits) for _ in range(1 << self.table_bits)
        ]
        self.stats = ISVMTableStats()
        self._window_correct = 0
        self._window_total = 0
        self._candidate_scores = {}

    # -- health --------------------------------------------------------------------
    def health(self) -> ISVMHealth:
        """Saturation telemetry over the table (see :class:`ISVMHealth`)."""
        weights_per_entry = 1 << self.weight_hash_bits
        active_entries = 0
        saturated = 0
        max_abs = 0
        for entry in self._table:
            entry_active = False
            for w in entry.weights:
                if w:
                    entry_active = True
                    max_abs = max(max_abs, abs(w))
                    if w <= ISVM.WEIGHT_MIN or w >= ISVM.WEIGHT_MAX:
                        saturated += 1
            if entry_active:
                active_entries += 1
        return ISVMHealth(
            num_entries=len(self._table),
            active_entries=active_entries,
            active_weights=active_entries * weights_per_entry,
            saturated_weights=saturated,
            max_abs_weight=max_abs,
        )

    # -- budget accounting (Table 3 / Section 5.4) ---------------------------------
    def storage_bytes(self) -> int:
        """Model size in bytes: #entries x #weights x 1 byte."""
        return len(self._table) * (1 << self.weight_hash_bits)
