"""Glider's input feature: the PC History Register and k-sparse encoding.

Section 4.3: Glider replaces the LSTM's ordered PC sequence with a
*k-sparse binary feature* — an unordered set of the last ``k`` unique
PCs.  Removing duplicates lets 5 history elements cover an effective
ordered history of ~30 PCs, and dropping order information is justified
by the attention analysis (Observations 2 and 3).

Section 4.4: the hardware holds this feature in a PC History Register
(PCHR), "a small LRU cache that tracks the 5 most recent PCs".
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np


class PCHistoryRegister:
    """LRU register of the last ``k`` *unique* PCs seen by one core.

    Inserting a PC already present refreshes its recency but does not
    change the set; inserting a new PC evicts the least-recently-seen
    one once ``k`` entries are held.  Iteration order is most-recent
    first, but consumers must not rely on order — the whole point of the
    feature is that order does not matter.
    """

    def __init__(self, capacity: int = 5) -> None:
        if capacity <= 0:
            raise ValueError("PCHR capacity must be positive")
        self.capacity = capacity
        self._entries: list[int] = []  # most recent first

    def insert(self, pc: int) -> None:
        try:
            self._entries.remove(pc)
        except ValueError:
            pass
        self._entries.insert(0, pc)
        if len(self._entries) > self.capacity:
            self._entries.pop()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[int]:
        return iter(self._entries)

    def __contains__(self, pc: int) -> bool:
        return pc in self._entries

    def snapshot(self) -> tuple[int, ...]:
        """Immutable copy of the current contents (most recent first)."""
        return tuple(self._entries)

    def clear(self) -> None:
        self._entries.clear()


def k_sparse_history(pcs: Iterable[int], k: int) -> tuple[int, ...]:
    """Last ``k`` unique PCs of an (oldest-to-newest) PC sequence.

    This is the offline equivalent of replaying the sequence through a
    :class:`PCHistoryRegister`: duplicates collapse to their most recent
    occurrence.  Returned most-recent-first; order is informational only.
    """
    seen: list[int] = []
    for pc in reversed(list(pcs)):
        if pc not in seen:
            seen.append(pc)
            if len(seen) == k:
                break
    return tuple(seen)


def k_sparse_vector(pcs: Iterable[int], vocabulary_size: int, k: int) -> np.ndarray:
    """Materialise the paper's k-sparse binary feature vector x ∈ {0,1}^u.

    ``pcs`` must already be dense indices in ``[0, vocabulary_size)``.
    Exactly ``min(k, #unique)`` entries are 1.  Mostly used by tests and
    the offline ISVM; the online hardware path never materialises it.
    """
    vec = np.zeros(vocabulary_size, dtype=np.int8)
    for pc in k_sparse_history(pcs, k):
        if not 0 <= pc < vocabulary_size:
            raise ValueError(f"PC index {pc} outside vocabulary of {vocabulary_size}")
        vec[pc] = 1
    return vec


def hash_pc(pc: int, bits: int) -> int:
    """The 4-bit (by default) per-PC hash used to index ISVM weights."""
    x = pc & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 16
    x = (x * 0x45D9F3B) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 16
    return x & ((1 << bits) - 1)
