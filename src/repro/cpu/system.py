"""Single-core and multi-core system models (IPC and weighted speedup).

``SingleCoreSystem`` drives one trace through a private hierarchy with a
chosen LLC policy and reports IPC.  ``MultiCoreSystem`` reproduces the
paper's 4-core methodology (Section 5.1): per-core private L1/L2, a
shared LLC, traces rewound until every core has executed its quota, and
weighted speedup ``sum(IPC_shared / IPC_single)`` computed against each
benchmark running alone on the same shared-cache configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache.block import AccessType, CacheRequest
from ..cache.cache import SetAssociativeCache
from ..cache.config import HierarchyConfig, scaled_hierarchy
from ..cache.hierarchy import LLCStream
from ..cache.policy import ReplacementPolicy
from ..policies.lru import LRUPolicy
from ..traces.trace import Trace
from .timing import CoreTimingState, DramBus, level_latency


@dataclass
class SystemResult:
    """Outcome of one system simulation."""

    name: str
    cycles: float
    instructions: float
    llc_demand_accesses: int
    llc_demand_misses: int
    per_core_ipc: dict[int, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / max(1.0, self.cycles)

    @property
    def llc_miss_rate(self) -> float:
        return self.llc_demand_misses / max(1, self.llc_demand_accesses)

    @property
    def mpki(self) -> float:
        """LLC misses per kilo-instruction."""
        return 1000.0 * self.llc_demand_misses / max(1.0, self.instructions)


class SingleCoreSystem:
    """One core, private three-level hierarchy, DRAM bus."""

    def __init__(
        self,
        config: HierarchyConfig | None = None,
        llc_policy: ReplacementPolicy | None = None,
        width: int = 4,
        rob_entries: int = 128,
    ) -> None:
        from ..cache.hierarchy import CacheHierarchy

        self.config = config or scaled_hierarchy()
        self.hierarchy = CacheHierarchy(self.config, llc_policy)
        self.dram = DramBus(self.config.dram)
        self.core = CoreTimingState(width=width, rob_entries=rob_entries)

    def run(self, trace: Trace) -> SystemResult:
        ipa = trace.instructions_per_access
        compute_per_access = max(0.0, ipa - 1.0)
        pcs, addresses, writes = trace.pcs, trace.addresses, trace.is_write
        for i in range(len(pcs)):
            self.core.advance_compute(compute_per_access)
            level = self.hierarchy.access(int(pcs[i]), int(addresses[i]), bool(writes[i]))
            if level == "dram":
                done = self.dram.request(self.core.cycle)
                latency = level_latency(self.config, "llc") + (done - self.core.cycle)
            else:
                latency = level_latency(self.config, level)
            self.core.issue_memory_access(latency, ipa)
        self.core.drain()
        llc = self.hierarchy.llc.stats
        return SystemResult(
            name=trace.name,
            cycles=self.core.cycle,
            instructions=float(self.core.retired_instructions),
            llc_demand_accesses=llc.demand_accesses,
            llc_demand_misses=llc.demand_misses,
        )


@dataclass
class _CoreContext:
    trace: Trace
    timing: CoreTimingState
    core_id: int = 0
    cursor: int = 0
    accesses_done: int = 0
    wraps: int = 0

    def next_access(self) -> tuple[int, int, bool]:
        if self.cursor >= len(self.trace):
            self.cursor = 0
            self.wraps += 1
        i = self.cursor
        self.cursor += 1
        self.accesses_done += 1
        # Distinct processes occupy distinct virtual code/data ranges
        # (separate binaries + ASLR), so each core's PCs and addresses
        # are offset into a private region; without this, co-running
        # synthetic programs would alias in PC-indexed predictor tables,
        # an artefact real multi-programmed systems do not have.
        offset = self.core_id << 44
        return (
            int(self.trace.pcs[i]) + (self.core_id << 40),
            int(self.trace.addresses[i]) + offset,
            bool(self.trace.is_write[i]),
        )


class MultiCoreSystem:
    """N cores with private L1/L2 and a shared LLC.

    Cores are interleaved by simulated time: at each step the core with
    the smallest current cycle issues its next access, so faster cores
    naturally issue more traffic — the behaviour that creates shared-LLC
    interference.  Each core runs until it has issued ``quota`` accesses,
    wrapping its trace if it finishes early (the paper rewinds early
    finishers until all have run 250M instructions).
    """

    def __init__(
        self,
        traces: list[Trace],
        config: HierarchyConfig | None = None,
        llc_policy: ReplacementPolicy | None = None,
        width: int = 4,
        rob_entries: int = 128,
    ) -> None:
        if not traces:
            raise ValueError("need at least one trace")
        self.config = config or scaled_hierarchy(cores=len(traces))
        self.llc = SetAssociativeCache(
            self.config.llc, llc_policy if llc_policy is not None else LRUPolicy()
        )
        self.l1s = [SetAssociativeCache(self.config.l1, LRUPolicy()) for _ in traces]
        self.l2s = [SetAssociativeCache(self.config.l2, LRUPolicy()) for _ in traces]
        self.dram = DramBus(self.config.dram)
        self.cores = [
            _CoreContext(
                trace=t,
                timing=CoreTimingState(width=width, rob_entries=rob_entries),
                core_id=i,
            )
            for i, t in enumerate(traces)
        ]
        self._access_index = 0

    def _core_access(self, core_id: int, pc: int, address: int, is_write: bool) -> str:
        self._access_index += 1
        request = CacheRequest(
            pc,
            address,
            AccessType.STORE if is_write else AccessType.LOAD,
            core=core_id,
            access_index=self._access_index,
        )
        if self.l1s[core_id].access(request).hit:
            return "l1"
        l2_result = self.l2s[core_id].access(request)
        if l2_result.hit:
            return "l2"
        llc_result = self.llc.access(request)
        if l2_result.caused_writeback:
            wb_address = self.l2s[core_id].evicted_line_address(
                self.l2s[core_id].set_index(address), l2_result
            )
            self._access_index += 1
            self.llc.access(
                CacheRequest(
                    l2_result.evicted_pc,
                    wb_address,
                    AccessType.WRITEBACK,
                    core=core_id,
                    access_index=self._access_index,
                )
            )
        return "llc" if llc_result.hit else "dram"

    def run(self, quota_accesses: int) -> SystemResult:
        """Run until every core has issued ``quota_accesses`` accesses."""
        import heapq

        heap = [(core.timing.cycle, i) for i, core in enumerate(self.cores)]
        heapq.heapify(heap)
        remaining = {i: quota_accesses for i in range(len(self.cores))}
        while heap:
            _, core_id = heapq.heappop(heap)
            core = self.cores[core_id]
            ipa = core.trace.instructions_per_access
            core.timing.advance_compute(max(0.0, ipa - 1.0))
            pc, address, is_write = core.next_access()
            level = self._core_access(core_id, pc, address, is_write)
            if level == "dram":
                done = self.dram.request(core.timing.cycle)
                latency = level_latency(self.config, "llc") + (done - core.timing.cycle)
            else:
                latency = level_latency(self.config, level)
            core.timing.issue_memory_access(latency, ipa)
            remaining[core_id] -= 1
            if remaining[core_id] > 0:
                heapq.heappush(heap, (core.timing.cycle, core_id))
        for core in self.cores:
            core.timing.drain()
        total_instructions = sum(c.timing.retired_instructions for c in self.cores)
        cycles = max(c.timing.cycle for c in self.cores)
        return SystemResult(
            name="+".join(c.trace.name for c in self.cores),
            cycles=cycles,
            instructions=float(total_instructions),
            llc_demand_accesses=self.llc.stats.demand_accesses,
            llc_demand_misses=self.llc.stats.demand_misses,
            per_core_ipc={i: c.timing.ipc for i, c in enumerate(self.cores)},
        )
