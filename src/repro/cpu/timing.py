"""First-order out-of-order core timing model.

The CRC2 framework models a 4-wide OOO core with an 8-stage pipeline and
a 128-entry reorder buffer (Section 5.1).  For replacement-policy
studies the performance-relevant behaviour is (a) how much memory
latency the ROB can overlap (memory-level parallelism) and (b) how DRAM
bandwidth throttles multi-core mixes.  This model captures both with an
interval-style simulation at memory-access granularity:

* non-memory instructions retire at the pipeline width;
* a memory access issues when it enters the ROB window (the access
  ``ROB/ipa`` accesses older must have retired) and completes after its
  hierarchy latency;
* retirement is in order, so an outstanding long-latency miss stalls
  retirement but later independent misses still overlap with it;
* DRAM transfers occupy a shared bus for ``line_size / bandwidth``
  cycles, adding queueing delay under load.

The model intentionally omits branch mispredictions, dependent-load
serialisation and prefetching; DESIGN.md records these as substitution
simplifications.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..cache.config import DramConfig, HierarchyConfig


class DramBus:
    """Shared DRAM bandwidth model: a single bus with FCFS occupancy."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self._free_at = 0.0
        self.transfers = 0
        self.busy_cycles = 0.0

    def request(self, now: float) -> float:
        """Issue a line transfer at time ``now``; returns completion time."""
        start = max(now, self._free_at)
        occupancy = self.config.cycles_per_line()
        self._free_at = start + occupancy
        self.transfers += 1
        self.busy_cycles += occupancy
        return start + self.config.latency + (start - now)

    def queue_delay(self, now: float) -> float:
        return max(0.0, self._free_at - now)


@dataclass
class CoreTimingState:
    """Cycle bookkeeping for one core."""

    width: int = 4
    rob_entries: int = 128
    pipeline_depth: int = 8

    def __post_init__(self) -> None:
        self.cycle = float(self.pipeline_depth)  # fill latency
        self.retired_instructions = 0
        # Completion times of in-flight memory accesses (ROB occupancy).
        self._inflight: deque[float] = deque()
        self._last_retire = self.cycle

    def rob_access_window(self, instructions_per_access: float) -> int:
        """How many memory accesses fit in the ROB simultaneously."""
        return max(1, int(self.rob_entries / max(1.0, instructions_per_access)))

    def advance_compute(self, instructions: float) -> None:
        """Retire ``instructions`` non-memory instructions at full width."""
        self.cycle += instructions / self.width
        self.retired_instructions += instructions

    def issue_memory_access(
        self, latency: float, instructions_per_access: float
    ) -> None:
        """Account one memory access with hierarchy latency ``latency``."""
        window = self.rob_access_window(instructions_per_access)
        # ROB-full stall: wait for the oldest in-flight access to retire.
        while len(self._inflight) >= window:
            oldest = self._inflight.popleft()
            if oldest > self.cycle:
                self.cycle = oldest
        complete = self.cycle + latency
        # In-order retirement: completion can't precede older completions.
        complete = max(complete, self._last_retire)
        self._last_retire = complete
        self._inflight.append(complete)
        self.retired_instructions += 1

    def drain(self) -> None:
        """Wait for all in-flight accesses to retire (end of trace)."""
        while self._inflight:
            oldest = self._inflight.popleft()
            if oldest > self.cycle:
                self.cycle = oldest

    @property
    def ipc(self) -> float:
        return self.retired_instructions / max(1.0, self.cycle)


def level_latency(config: HierarchyConfig, level: str, dram_extra: float = 0.0) -> float:
    """Total load-to-use latency for a request served at ``level``."""
    if level == "l1":
        return config.l1.latency
    if level == "l2":
        return config.l1.latency + config.l2.latency
    if level == "llc":
        return config.l1.latency + config.l2.latency + config.llc.latency
    if level == "dram":
        return (
            config.l1.latency
            + config.l2.latency
            + config.llc.latency
            + config.dram.latency
            + dram_extra
        )
    raise ValueError(f"unknown level {level!r}")
