"""Core/DRAM timing substrate: IPC and weighted-speedup simulation."""

from .system import MultiCoreSystem, SingleCoreSystem, SystemResult
from .timing import CoreTimingState, DramBus, level_latency

__all__ = [
    "CoreTimingState",
    "DramBus",
    "MultiCoreSystem",
    "SingleCoreSystem",
    "SystemResult",
    "level_latency",
]
