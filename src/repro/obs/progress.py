"""Live per-task progress + ETA reporting for ``--jobs N`` sweeps.

A :class:`ProgressReporter` is a plain callable so it threads through
the ``progress=`` hooks in :mod:`repro.perf.parallel` and the
supervisor without those layers importing any rendering code.  It
writes one line per completed task to *stderr* (never stdout — stdout
is reserved for tables and ``--metrics-out -`` JSON) and estimates the
remaining wall-clock from the observed completion rate.
"""

from __future__ import annotations

import sys
import time
from typing import Any, TextIO

__all__ = ["ProgressReporter"]


def _fmt_seconds(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Callable counting completions: ``reporter(task_id_or_outcome)``.

    Accepts whatever the pipeline hands it — a task-id string, a
    ``TaskOutcome``-like object (uses its ``task_id``/``status``), or
    ``None`` — and renders ``[done/total] id status (elapsed, eta ...)``.
    """

    def __init__(
        self,
        total: int,
        label: str = "tasks",
        stream: TextIO | None = None,
        enabled: bool = True,
    ) -> None:
        self.total = max(0, int(total))
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.done = 0
        self.started = time.perf_counter()

    def __call__(self, outcome: Any = None) -> None:
        self.done += 1
        if not self.enabled:
            return
        task_id = getattr(outcome, "task_id", None)
        status = getattr(outcome, "status", None)
        if task_id is None and isinstance(outcome, str):
            task_id = outcome
        elapsed = time.perf_counter() - self.started
        parts = [f"[{self.done}/{self.total or '?'}] {self.label}"]
        if task_id is not None:
            parts.append(str(task_id))
        if status not in (None, "ok"):
            parts.append(f"({status})")
        parts.append(f"elapsed {_fmt_seconds(elapsed)}")
        if self.total and 0 < self.done < self.total:
            eta = elapsed / self.done * (self.total - self.done)
            parts.append(f"eta {_fmt_seconds(eta)}")
        try:
            print(" ".join(parts), file=self.stream, flush=True)
        except ValueError:
            # Stream already closed (interpreter teardown); drop the line.
            self.enabled = False

    def finish(self) -> None:
        if not self.enabled:
            return
        elapsed = time.perf_counter() - self.started
        print(
            f"[{self.done}/{self.total or self.done}] {self.label} done "
            f"in {_fmt_seconds(elapsed)}",
            file=self.stream,
            flush=True,
        )
