"""The ``python -m repro.eval obs ...`` subcommand.

Four verbs over snapshot/trace/insight files on disk:

``summarize <snapshot>``
    Validate and render one metrics snapshot as a table (also accepts a
    ``repro.perf.bench/v1`` report, converting it on the fly).
    Histograms get p50/p90/p99 columns interpolated from their buckets.

``diff <a> <b> [--only GLOB ...] [--fail-drop PCT]``
    Per-metric delta table between two snapshots.  Metrics present in
    only one snapshot are reported as ``added``/``removed`` rows, never
    an error.  ``--fail-drop`` turns the diff into a regression gate:
    exit 1 if any matched metric dropped by more than PCT percent (used
    by CI against the committed bench baseline); one-sided rows have no
    percentage and cannot trip the gate.

``chrome <trace.jsonl> [<trace.jsonl> ...] <out.json>``
    Merge one or more JSONL traces into a single ``chrome://tracing`` /
    Perfetto file (pass the server's and every shard's trace to get one
    cross-process timeline).

``report --out <report.html> [--insight F] [--metrics F] [--trace F ...]``
    Render a self-contained HTML report (inline SVG, no external deps)
    from any combination of insight/metrics/trace artifacts.

Tables go to stdout; diagnostics to stderr.  Exit codes: 0 ok,
1 regression gate tripped, 2 schema/usage problems.

This module deliberately avoids importing :mod:`repro.eval` (which
pulls in the ML stack) — it has its own minimal table renderer.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from .metrics import (
    METRICS_SCHEMA,
    diff_snapshots,
    histogram_quantiles,
    load_snapshot,
    validate_snapshot,
)
from .trace import export_chrome

__all__ = ["main"]

#: Bench reports are accepted wherever a snapshot is, via conversion.
_BENCH_SCHEMA = "repro.perf.bench/v1"


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _render_table(rows: list[dict], columns: Sequence[str], title: str | None = None) -> str:
    widths = {c: len(c) for c in columns}
    rendered = [{c: _fmt(r.get(c)) for c in columns} for r in rows]
    for row in rendered:
        for c in columns:
            widths[c] = max(widths[c], len(row[c]))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[c] for c in columns))
    for row in rendered:
        lines.append("  ".join(row[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _load(path: str) -> dict:
    """Load a metrics snapshot, converting bench reports when needed."""
    try:
        payload = load_snapshot(path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"obs: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if isinstance(payload, dict) and payload.get("schema") == _BENCH_SCHEMA:
        from ..perf.bench import bench_to_metrics_snapshot

        return bench_to_metrics_snapshot(payload)
    return payload


def _check(path: str, snapshot: dict) -> int:
    problems = validate_snapshot(snapshot)
    for problem in problems:
        print(f"obs: {path}: {problem}", file=sys.stderr)
    return 2 if problems else 0


def _summarize(args: argparse.Namespace) -> int:
    snapshot = _load(args.snapshot)
    status = _check(args.snapshot, snapshot)
    if status:
        return status
    rows = []
    for key, entry in snapshot["metrics"].items():
        if entry["type"] == "histogram":
            count = entry["count"]
            mean = entry["sum"] / count if count else None
            p50, p90, p99 = histogram_quantiles(entry, (0.5, 0.9, 0.99))
            rows.append(
                {
                    "metric": key,
                    "type": entry["type"],
                    "value": count,
                    "mean": mean,
                    "p50": p50,
                    "p90": p90,
                    "p99": p99,
                }
            )
        else:
            rows.append(
                {"metric": key, "type": entry["type"], "value": entry["value"]}
            )
    run_id = snapshot.get("run_id")
    title = f"snapshot {args.snapshot}" + (f" (run {run_id})" if run_id else "")
    print(
        _render_table(
            rows, ["metric", "type", "value", "mean", "p50", "p90", "p99"], title
        )
    )
    return 0


def _diff(args: argparse.Namespace) -> int:
    a, b = _load(args.a), _load(args.b)
    status = _check(args.a, a) or _check(args.b, b)
    if status:
        return status
    rows = diff_snapshots(a, b, only=args.only or None)
    if not rows:
        print("obs: no metrics matched", file=sys.stderr)
        return 0
    print(
        _render_table(
            rows,
            ["metric", "a", "b", "delta", "pct", "status"],
            f"{args.a} -> {args.b}",
        )
    )
    if args.fail_drop is not None:
        tripped = [
            r for r in rows if r["pct"] is not None and r["pct"] < -args.fail_drop
        ]
        if tripped:
            for row in tripped:
                print(
                    f"obs: regression: {row['metric']} dropped "
                    f"{-row['pct']:.1f}% (> {args.fail_drop:.0f}% allowed)",
                    file=sys.stderr,
                )
            return 1
    return 0


def _chrome(args: argparse.Namespace) -> int:
    count = export_chrome(args.trace, args.out)
    label = args.trace[0] if len(args.trace) == 1 else f"{len(args.trace)} traces"
    print(f"obs: wrote {count} events from {label} -> {args.out}", file=sys.stderr)
    return 0 if count else 2


def _report(args: argparse.Namespace) -> int:
    from .report import generate_report

    if not (args.insight or args.metrics or args.trace):
        print("obs: report needs at least one of --insight/--metrics/--trace",
              file=sys.stderr)
        return 2
    if args.insight:
        from .insight import load_artifact, validate_artifact

        try:
            artifact = load_artifact(args.insight)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"obs: cannot read {args.insight}: {exc}", file=sys.stderr)
            return 2
        problems = validate_artifact(artifact)
        for problem in problems:
            print(f"obs: {args.insight}: {problem}", file=sys.stderr)
        if problems:
            return 2
    try:
        out = generate_report(
            args.out,
            insight_path=args.insight,
            metrics_path=args.metrics,
            trace_paths=args.trace or None,
            title=args.title,
        )
    except (OSError, json.JSONDecodeError) as exc:
        print(f"obs: report failed: {exc}", file=sys.stderr)
        return 2
    print(f"obs: wrote report -> {out}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval obs", description=__doc__
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    p_sum = sub.add_parser("summarize", help="validate and render one snapshot")
    p_sum.add_argument("snapshot")
    p_sum.set_defaults(fn=_summarize)

    p_diff = sub.add_parser(
        "diff",
        help="per-metric delta between two snapshots",
        description=(
            "Per-metric delta table between two snapshots (b minus a). "
            "Metrics present in only one snapshot are reported with "
            "status 'added' or 'removed' — never an error."
        ),
        epilog=(
            "exit codes: 0 = diff rendered (including added/removed rows); "
            "1 = --fail-drop gate tripped by a matched metric dropping more "
            "than PCT percent; 2 = unreadable file or invalid snapshot "
            "schema.  One-sided metrics have no percentage and can never "
            "trip the gate."
        ),
    )
    p_diff.add_argument("a")
    p_diff.add_argument("b")
    p_diff.add_argument(
        "--only", action="append", metavar="GLOB",
        help="restrict to metrics matching this fnmatch pattern (repeatable)",
    )
    p_diff.add_argument(
        "--fail-drop", type=float, default=None, metavar="PCT",
        help="exit 1 if any matched metric dropped by more than PCT percent",
    )
    p_diff.set_defaults(fn=_diff)

    p_chrome = sub.add_parser(
        "chrome", help="merge JSONL trace(s) into a chrome://tracing file"
    )
    p_chrome.add_argument(
        "trace", nargs="+",
        help="one or more JSONL trace files (server + shard workers)",
    )
    p_chrome.add_argument("out")
    p_chrome.set_defaults(fn=_chrome)

    p_report = sub.add_parser(
        "report", help="render a self-contained HTML run report"
    )
    p_report.add_argument(
        "--out", required=True, help="output HTML path"
    )
    p_report.add_argument(
        "--insight", default=None, help="repro.obs.insight/v1 artifact"
    )
    p_report.add_argument(
        "--metrics", default=None, help="repro.obs.metrics/v1 snapshot"
    )
    p_report.add_argument(
        "--trace", action="append", metavar="JSONL", default=None,
        help="JSONL trace file (repeatable; all merged into one rollup)",
    )
    p_report.add_argument("--title", default=None, help="report title")
    p_report.set_defaults(fn=_report)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
