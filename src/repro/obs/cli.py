"""The ``python -m repro.eval obs ...`` subcommand.

Three verbs over snapshot/trace files on disk:

``summarize <snapshot>``
    Validate and render one metrics snapshot as a table (also accepts a
    ``repro.perf.bench/v1`` report, converting it on the fly).

``diff <a> <b> [--only GLOB ...] [--fail-drop PCT]``
    Per-metric delta table between two snapshots.  ``--fail-drop``
    turns the diff into a regression gate: exit 1 if any matched metric
    dropped by more than PCT percent (used by CI against the committed
    bench baseline).

``chrome <trace.jsonl> <out.json>``
    Wrap a JSONL trace into a ``chrome://tracing`` / Perfetto file.

Tables go to stdout; diagnostics to stderr.  Exit codes: 0 ok,
1 regression gate tripped, 2 schema/usage problems.

This module deliberately avoids importing :mod:`repro.eval` (which
pulls in the ML stack) — it has its own minimal table renderer.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from .metrics import (
    METRICS_SCHEMA,
    diff_snapshots,
    load_snapshot,
    validate_snapshot,
)
from .trace import export_chrome

__all__ = ["main"]

#: Bench reports are accepted wherever a snapshot is, via conversion.
_BENCH_SCHEMA = "repro.perf.bench/v1"


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _render_table(rows: list[dict], columns: Sequence[str], title: str | None = None) -> str:
    widths = {c: len(c) for c in columns}
    rendered = [{c: _fmt(r.get(c)) for c in columns} for r in rows]
    for row in rendered:
        for c in columns:
            widths[c] = max(widths[c], len(row[c]))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[c] for c in columns))
    for row in rendered:
        lines.append("  ".join(row[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _load(path: str) -> dict:
    """Load a metrics snapshot, converting bench reports when needed."""
    try:
        payload = load_snapshot(path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"obs: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if isinstance(payload, dict) and payload.get("schema") == _BENCH_SCHEMA:
        from ..perf.bench import bench_to_metrics_snapshot

        return bench_to_metrics_snapshot(payload)
    return payload


def _check(path: str, snapshot: dict) -> int:
    problems = validate_snapshot(snapshot)
    for problem in problems:
        print(f"obs: {path}: {problem}", file=sys.stderr)
    return 2 if problems else 0


def _summarize(args: argparse.Namespace) -> int:
    snapshot = _load(args.snapshot)
    status = _check(args.snapshot, snapshot)
    if status:
        return status
    rows = []
    for key, entry in snapshot["metrics"].items():
        if entry["type"] == "histogram":
            count = entry["count"]
            mean = entry["sum"] / count if count else None
            rows.append(
                {"metric": key, "type": entry["type"], "value": count, "mean": mean}
            )
        else:
            rows.append(
                {"metric": key, "type": entry["type"], "value": entry["value"], "mean": None}
            )
    run_id = snapshot.get("run_id")
    title = f"snapshot {args.snapshot}" + (f" (run {run_id})" if run_id else "")
    print(_render_table(rows, ["metric", "type", "value", "mean"], title))
    return 0


def _diff(args: argparse.Namespace) -> int:
    a, b = _load(args.a), _load(args.b)
    status = _check(args.a, a) or _check(args.b, b)
    if status:
        return status
    rows = diff_snapshots(a, b, only=args.only or None)
    if not rows:
        print("obs: no metrics matched", file=sys.stderr)
        return 0
    print(
        _render_table(
            rows, ["metric", "a", "b", "delta", "pct"], f"{args.a} -> {args.b}"
        )
    )
    if args.fail_drop is not None:
        tripped = [
            r for r in rows if r["pct"] is not None and r["pct"] < -args.fail_drop
        ]
        if tripped:
            for row in tripped:
                print(
                    f"obs: regression: {row['metric']} dropped "
                    f"{-row['pct']:.1f}% (> {args.fail_drop:.0f}% allowed)",
                    file=sys.stderr,
                )
            return 1
    return 0


def _chrome(args: argparse.Namespace) -> int:
    count = export_chrome(args.trace, args.out)
    print(f"obs: wrote {count} events -> {args.out}", file=sys.stderr)
    return 0 if count else 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval obs", description=__doc__
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    p_sum = sub.add_parser("summarize", help="validate and render one snapshot")
    p_sum.add_argument("snapshot")
    p_sum.set_defaults(fn=_summarize)

    p_diff = sub.add_parser("diff", help="per-metric delta between two snapshots")
    p_diff.add_argument("a")
    p_diff.add_argument("b")
    p_diff.add_argument(
        "--only", action="append", metavar="GLOB",
        help="restrict to metrics matching this fnmatch pattern (repeatable)",
    )
    p_diff.add_argument(
        "--fail-drop", type=float, default=None, metavar="PCT",
        help="exit 1 if any matched metric dropped by more than PCT percent",
    )
    p_diff.set_defaults(fn=_diff)

    p_chrome = sub.add_parser("chrome", help="export a JSONL trace for chrome://tracing")
    p_chrome.add_argument("trace")
    p_chrome.add_argument("out")
    p_chrome.set_defaults(fn=_chrome)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
