"""Self-contained HTML run reports (``obs report``).

Renders one run's observability artifacts — an insight artifact
(:mod:`repro.obs.insight`), a metrics snapshot
(:mod:`repro.obs.metrics`) and/or a JSONL trace
(:mod:`repro.obs.trace`) — into a single HTML file with no external
dependencies: styling is inline CSS and every chart is hand-built SVG,
so the file opens offline and attaches cleanly to CI runs.

Sections (each present only when its artifact is):

* **Decision quality** — summary cards (online accuracy / precision /
  coverage / flip rate vs the rolling OPTgen ground truth), the
  accuracy-over-time line, and per-policy model-drift sparklines.
* **Per-set heatmap** — sampled sets coloured by misprediction rate,
  with access/eviction counts in the tooltip.
* **Worst decisions** — the sampled accesses where the policy evicted a
  line Belady's OPT would have kept.
* **Metrics** — counters/gauges and histogram quantiles from a
  ``repro.obs.metrics/v1`` snapshot.
* **Trace** — per-span duration rollup from a JSONL trace.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from . import metrics as obs_metrics
from . import trace as obs_trace

__all__ = ["generate_report", "render_report"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #1a1a2e;
       background: #fafafa; padding: 0 1rem; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #16324f; padding-bottom: .3rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; color: #16324f; }
.meta { color: #555; font-size: .85rem; }
.cards { display: flex; flex-wrap: wrap; gap: .8rem; margin: 1rem 0; }
.card { background: #fff; border: 1px solid #ddd; border-radius: 6px;
        padding: .6rem 1rem; min-width: 7.5rem; }
.card .v { font-size: 1.3rem; font-weight: 600; }
.card .k { font-size: .75rem; color: #666; text-transform: uppercase; }
table { border-collapse: collapse; background: #fff; font-size: .85rem; }
th, td { border: 1px solid #ddd; padding: .3rem .6rem; text-align: right; }
th { background: #f0f3f7; }
td.l, th.l { text-align: left; }
svg { background: #fff; border: 1px solid #ddd; border-radius: 4px; }
.grid { display: grid; grid-template-columns: repeat(16, 1.6rem); gap: 2px; }
.cell { height: 1.6rem; border-radius: 2px; font-size: 0; }
.spark { display: inline-block; margin: .3rem .6rem .3rem 0; }
.spark .t { font-size: .72rem; color: #555; display: block; }
.empty { color: #888; font-style: italic; }
"""


def _fmt(value: Any) -> str:
    """Compact numeric formatting for table cells and cards."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or value == int(value):
            return f"{value:,.0f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return html.escape(str(value))


def _svg_line(
    points: Sequence[Sequence[float]],
    *,
    width: int = 640,
    height: int = 160,
    y_min: float | None = None,
    y_max: float | None = None,
    stroke: str = "#16324f",
) -> str:
    """A minimal SVG line chart with y-axis labels; no external deps."""
    if not points:
        return '<p class="empty">no data points</p>'
    xs = [float(p[0]) for p in points]
    ys = [float(p[1]) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    lo = min(ys) if y_min is None else y_min
    hi = max(ys) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    pad, axis = 6, 46
    plot_w = width - axis - pad
    plot_h = height - 2 * pad - 14
    coords = []
    for x, y in zip(xs, ys):
        px = axis + (x - x_lo) / (x_hi - x_lo) * plot_w
        py = pad + (1.0 - (y - lo) / (hi - lo)) * plot_h
        coords.append(f"{px:.1f},{py:.1f}")
    labels = (
        f'<text x="{axis - 4}" y="{pad + 8}" text-anchor="end" '
        f'font-size="10" fill="#666">{_fmt(hi)}</text>'
        f'<text x="{axis - 4}" y="{pad + plot_h}" text-anchor="end" '
        f'font-size="10" fill="#666">{_fmt(lo)}</text>'
        f'<text x="{axis}" y="{height - 2}" font-size="10" '
        f'fill="#666">{_fmt(x_lo)}</text>'
        f'<text x="{width - pad}" y="{height - 2}" text-anchor="end" '
        f'font-size="10" fill="#666">{_fmt(x_hi)}</text>'
    )
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<line x1="{axis}" y1="{pad}" x2="{axis}" y2="{pad + plot_h}" '
        f'stroke="#ccc"/>'
        f'<line x1="{axis}" y1="{pad + plot_h}" x2="{width - pad}" '
        f'y2="{pad + plot_h}" stroke="#ccc"/>'
        f'<polyline fill="none" stroke="{stroke}" stroke-width="1.5" '
        f'points="{" ".join(coords)}"/>'
        f"{labels}</svg>"
    )


def _cards(pairs: Iterable[tuple[str, Any]]) -> str:
    cells = "".join(
        f'<div class="card"><div class="v">{_fmt(v)}</div>'
        f'<div class="k">{html.escape(k)}</div></div>'
        for k, v in pairs
    )
    return f'<div class="cards">{cells}</div>'


def _heat_color(rate: float) -> str:
    """White (0) -> red (1) ramp for misprediction rates."""
    rate = min(1.0, max(0.0, rate))
    g = int(235 - 175 * rate)
    return f"rgb(235,{g},{g})"


def _insight_sections(insight: dict) -> list[str]:
    parts: list[str] = []
    summary = insight.get("summary") or {}
    geometry = insight.get("geometry") or {}
    parts.append("<h2>Decision quality (vs rolling OPTgen)</h2>")
    parts.append(
        _cards(
            [
                ("accuracy", summary.get("accuracy")),
                ("precision", summary.get("precision")),
                ("coverage", summary.get("coverage")),
                ("flip rate", summary.get("flip_rate")),
                ("scored", summary.get("scored")),
                ("sampled accesses", summary.get("sampled_accesses")),
                ("evictions", summary.get("evictions")),
                ("worst decisions", summary.get("worst_decisions")),
            ]
        )
    )
    series = insight.get("accuracy_series") or []
    parts.append("<h3>Online accuracy over time</h3>")
    parts.append(
        _svg_line(series, y_min=0.0, y_max=1.0)
        if series
        else '<p class="empty">not enough resolved decisions for a series</p>'
    )

    drift = insight.get("drift") or {}
    if drift:
        parts.append("<h3>Model drift</h3>")
        for policy in sorted(drift):
            sparks = []
            for name in sorted(drift[policy]):
                points = drift[policy][name]
                if not points:
                    continue
                sparks.append(
                    '<span class="spark">'
                    f'<span class="t">{html.escape(name)}</span>'
                    f"{_svg_line(points, width=220, height=80, stroke='#a63d40')}"
                    "</span>"
                )
            if sparks:
                parts.append(
                    f"<p><strong>{html.escape(policy)}</strong></p>"
                    + "".join(sparks)
                )

    heatmap = insight.get("heatmap") or {}
    if heatmap:
        parts.append("<h3>Per-set misprediction heatmap (sampled sets)</h3>")
        cells = []
        for set_key in sorted(heatmap, key=lambda s: int(s)):
            cell = heatmap[set_key]
            scored = cell.get("scored", 0)
            mis = cell.get("mispredicted", 0)
            rate = mis / scored if scored else 0.0
            tip = (
                f"set {set_key}: {cell.get('accesses', 0)} accesses, "
                f"{cell.get('evictions', 0)} evictions, {mis}/{scored} "
                f"mispredicted"
            )
            cells.append(
                f'<div class="cell" style="background:{_heat_color(rate)}" '
                f'title="{html.escape(tip)}">{set_key}</div>'
            )
        parts.append(f'<div class="grid">{"".join(cells)}</div>')
        parts.append(
            '<p class="meta">white = no mispredictions, red = every scored '
            "prediction wrong; hover a cell for counts</p>"
        )

    worst = insight.get("worst") or []
    parts.append("<h3>Worst decisions (evicted, but OPT would have kept)</h3>")
    if worst:
        rows = "".join(
            "<tr>"
            f"<td>{_fmt(w.get('set'))}</td>"
            f"<td class='l'><code>0x{int(w.get('line', 0)):x}</code></td>"
            f"<td class='l'><code>0x{int(w.get('pc', 0)):x}</code></td>"
            f"<td>{_fmt(w.get('predicted_friendly'))}</td>"
            f"<td>{_fmt(w.get('signal'))}</td>"
            f"<td>{_fmt(w.get('inserted_seq'))}</td>"
            f"<td>{_fmt(w.get('evicted_seq'))}</td>"
            f"<td>{_fmt(w.get('victim_predicted_friendly'))}</td>"
            f"<td>{_fmt(w.get('victim_rrpv'))}</td>"
            "</tr>"
            for w in worst
        )
        parts.append(
            "<table><tr><th>set</th><th class='l'>line</th>"
            "<th class='l'>pc</th><th>pred friendly</th><th>signal</th>"
            "<th>inserted</th><th>evicted</th><th>victim friendly</th>"
            "<th>victim rrpv</th></tr>"
            f"{rows}</table>"
        )
        total = (insight.get("summary") or {}).get("worst_decisions", len(worst))
        if total > len(worst):
            parts.append(
                f'<p class="meta">showing {len(worst)} of {_fmt(total)} '
                "recorded worst decisions (bounded sample)</p>"
            )
    else:
        parts.append(
            '<p class="empty">none recorded — no sampled eviction was '
            "contradicted by OPT within the window</p>"
        )

    if geometry:
        parts.append(
            f'<p class="meta">geometry: {geometry.get("num_sets")} sets x '
            f'{geometry.get("associativity")} ways, '
            f'{len(geometry.get("sampled_sets") or [])} sampled sets</p>'
        )
    return parts


def _metrics_sections(snapshot: dict) -> list[str]:
    parts: list[str] = ["<h2>Metrics</h2>"]
    metrics = snapshot.get("metrics") or {}
    scalars: list[tuple[str, str, Any]] = []
    histograms: list[tuple[str, dict]] = []
    for key in sorted(metrics):
        entry = metrics[key]
        kind = entry.get("type")
        if kind == "histogram":
            histograms.append((key, entry))
        elif kind == "counter":
            scalars.append((key, kind, entry.get("value")))
        else:
            scalars.append((key, kind or "?", entry.get("value")))
    if scalars:
        rows = "".join(
            f"<tr><td class='l'><code>{html.escape(k)}</code></td>"
            f"<td class='l'>{html.escape(kind)}</td><td>{_fmt(v)}</td></tr>"
            for k, kind, v in scalars
        )
        parts.append(
            "<table><tr><th class='l'>metric</th><th class='l'>type</th>"
            f"<th>value</th></tr>{rows}</table>"
        )
    if histograms:
        parts.append("<h3>Histograms</h3>")
        rows = []
        for key, entry in histograms:
            quantiles = obs_metrics.histogram_quantiles(entry, (0.5, 0.9, 0.99))
            rows.append(
                f"<tr><td class='l'><code>{html.escape(key)}</code></td>"
                f"<td>{_fmt(entry.get('count'))}</td>"
                f"<td>{_fmt(entry.get('sum'))}</td>"
                f"<td>{_fmt(quantiles[0])}</td>"
                f"<td>{_fmt(quantiles[1])}</td>"
                f"<td>{_fmt(quantiles[2])}</td></tr>"
            )
        parts.append(
            "<table><tr><th class='l'>histogram</th><th>count</th>"
            "<th>sum</th><th>p50</th><th>p90</th><th>p99</th></tr>"
            f"{''.join(rows)}</table>"
        )
    if not scalars and not histograms:
        parts.append('<p class="empty">snapshot contains no metrics</p>')
    return parts


def _trace_sections(events: list[dict]) -> list[str]:
    parts: list[str] = ["<h2>Trace</h2>"]
    spans: dict[str, list[float]] = {}
    instants = 0
    pids = set()
    for ev in events:
        pids.add(ev.get("pid"))
        if ev.get("ph") == "X":
            spans.setdefault(ev.get("name", "?"), []).append(
                float(ev.get("dur", 0.0))
            )
        elif ev.get("ph") == "i":
            instants += 1
    if not spans and not instants:
        parts.append('<p class="empty">trace contains no events</p>')
        return parts
    parts.append(
        f'<p class="meta">{sum(len(v) for v in spans.values())} spans, '
        f"{instants} instants across {len(pids)} process(es)</p>"
    )
    rows = []
    for name in sorted(spans, key=lambda n: -sum(spans[n])):
        durations = sorted(spans[name])
        total = sum(durations)
        p50 = durations[len(durations) // 2]
        rows.append(
            f"<tr><td class='l'><code>{html.escape(name)}</code></td>"
            f"<td>{len(durations):,}</td>"
            f"<td>{total / 1e3:,.2f}</td>"
            f"<td>{p50 / 1e3:,.3f}</td>"
            f"<td>{durations[-1] / 1e3:,.3f}</td></tr>"
        )
    parts.append(
        "<table><tr><th class='l'>span</th><th>count</th>"
        "<th>total ms</th><th>p50 ms</th><th>max ms</th></tr>"
        f"{''.join(rows)}</table>"
    )
    return parts


def render_report(
    *,
    insight: dict | None = None,
    metrics: dict | None = None,
    trace_events: list[dict] | None = None,
    title: str = "repro run report",
) -> str:
    """Render the artifacts into one self-contained HTML document."""
    run_id = None
    if insight:
        run_id = insight.get("run_id")
    if run_id is None and metrics:
        run_id = metrics.get("run_id")
    labels = (insight or {}).get("labels") or {}
    meta_bits = []
    if run_id:
        meta_bits.append(f"run <code>{html.escape(str(run_id))}</code>")
    if labels:
        meta_bits.append(
            ", ".join(
                f"{html.escape(str(k))}={html.escape(str(v))}"
                for k, v in sorted(labels.items())
            )
        )
    if metrics and metrics.get("created_unix"):
        meta_bits.append(f"snapshot t={_fmt(metrics['created_unix'])}")
    body: list[str] = [
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="meta">{" &middot; ".join(meta_bits)}</p>'
        if meta_bits
        else "",
    ]
    if insight:
        body.extend(_insight_sections(insight))
    if metrics:
        body.extend(_metrics_sections(metrics))
    if trace_events:
        body.extend(_trace_sections(trace_events))
    if not insight and not metrics and not trace_events:
        body.append('<p class="empty">no artifacts supplied</p>')
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"{''.join(body)}</body></html>"
    )


def generate_report(
    out_path: str | Path,
    *,
    insight_path: str | Path | None = None,
    metrics_path: str | Path | None = None,
    trace_paths: Sequence[str | Path] | None = None,
    title: str | None = None,
) -> Path:
    """Load artifacts from disk and write the HTML report atomically."""
    from ..traces.io import atomic_write_text

    if insight_path is None and metrics_path is None and not trace_paths:
        raise ValueError(
            "generate_report needs at least one of "
            "insight_path / metrics_path / trace_paths"
        )

    insight = None
    if insight_path is not None:
        with open(insight_path, "r", encoding="utf-8") as handle:
            insight = json.load(handle)
    metrics = None
    if metrics_path is not None:
        metrics = obs_metrics.load_snapshot(metrics_path)
    events: list[dict] = []
    for path in trace_paths or ():
        events.extend(obs_trace.read_events(path))
    out_path = Path(out_path)
    html_text = render_report(
        insight=insight,
        metrics=metrics,
        trace_events=events or None,
        title=title or "repro run report",
    )
    atomic_write_text(out_path, html_text)
    return out_path
