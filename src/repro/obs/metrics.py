"""Process-local metrics registry (``repro.obs.metrics``).

The registry holds three metric kinds — monotonic :class:`Counter`\\ s,
last-value :class:`Gauge`\\ s, and bucketed :class:`Histogram`\\ s — keyed
by name plus an optional label set, and turns them into *snapshots*:
plain JSON-serialisable dicts with a schema tag and the run's
correlation id.  Snapshots can be merged (multi-process runs), diffed
(two runs, or reference engine vs fastsim), validated, and exported as
JSON or the Prometheus textfile format.

Performance contract: collection is **off by default** and every
instrumentation site checks the module-level :data:`ENABLED` flag before
doing *any* work — no metric object is allocated, no label dict built,
no string formatted.  The helpers :func:`counter` / :func:`gauge` /
:func:`histogram` return a shared no-op sink when collection is
disabled, so call sites can be written unconditionally without paying
for observability they did not turn on.  Hot kernels (the fastsim
replay loops) are instrumented only at call boundaries, never
per-access.
"""

from __future__ import annotations

import fnmatch
import json
import math
import os
import re
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "METRICS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collecting",
    "counter",
    "diff_snapshots",
    "disable",
    "enable",
    "gauge",
    "histogram",
    "histogram_quantiles",
    "live_prometheus",
    "load_snapshot",
    "merge_snapshots",
    "registry",
    "save_snapshot",
    "to_prometheus",
    "validate_snapshot",
]

#: Schema tag stamped into (and required of) every metrics snapshot.
METRICS_SCHEMA = "repro.obs.metrics/v1"

#: Module-level collection flag.  Instrumentation sites check this
#: *before* building labels or touching the registry, so a disabled run
#: pays one attribute load per site and nothing else.
ENABLED = False

#: Default histogram bucket upper bounds (powers of two; +Inf implicit).
DEFAULT_BUCKETS: tuple[float, ...] = tuple(2.0**i for i in range(0, 16))


def _metric_key(name: str, labels: Mapping[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of the key encoding: ``"n{a=1,b=x}"`` -> ``("n", {...})``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict[str, str] = {}
    for part in inner[:-1].split(","):
        if "=" in part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


class Counter:
    """Monotonically increasing integer counter.

    Mutations take a per-metric lock: ``+=`` on an attribute is a
    read-modify-write that can lose increments when threads interleave
    (the serve stack increments from listener and worker threads).
    """

    __slots__ = ("key", "value", "_lock")
    kind = "counter"

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    # Counters accept the other sinks' verbs so a call site can switch
    # metric kinds without breaking the disabled-path null object.
    def as_dict(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """Last-written value (queue depth, learning rate, throughput)."""

    __slots__ = ("key", "value", "_lock")
    kind = "gauge"

    def __init__(self, key: str) -> None:
        self.key = key
        self.value: float | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = float(value)

    def max(self, value: float) -> None:
        value = float(value)
        with self._lock:
            if self.value is None or value > self.value:
                self.value = value

    def as_dict(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Bucketed distribution with count/sum/min/max.

    ``buckets`` are inclusive upper bounds; values above the last bound
    land in the implicit ``+Inf`` bucket.  Bucket counts are
    *non-cumulative* in snapshots (easier to merge and diff); the
    Prometheus exporter accumulates them on the way out.
    """

    __slots__ = (
        "key", "buckets", "counts", "count", "total", "vmin", "vmax", "_lock"
    )
    kind = "histogram"

    def __init__(self, key: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.key = key
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin: float | None = None
        self.vmax: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float, n: int = 1) -> None:
        value = float(value)
        with self._lock:
            self.count += n
            self.total += value * n
            if self.vmin is None or value < self.vmin:
                self.vmin = value
            if self.vmax is None or value > self.vmax:
                self.vmax = value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += n
                    return
            self.counts[-1] += n

    def as_dict(self) -> dict:
        with self._lock:
            buckets = {str(b): c for b, c in zip(self.buckets, self.counts)}
            buckets["+Inf"] = self.counts[-1]
            return {
                "type": self.kind,
                "count": self.count,
                "sum": self.total,
                "min": self.vmin,
                "max": self.vmax,
                "buckets": buckets,
            }


class _NullSink:
    """Shared no-op metric returned while collection is disabled."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def max(self, value: float) -> None:
        pass

    def observe(self, value: float, n: int = 1) -> None:
        pass


_NULL = _NullSink()


class MetricsRegistry:
    """Name+labels -> metric map with snapshot/merge/diff plumbing."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        # Guards metric *creation* and snapshot iteration.  Two threads
        # racing _get for a new key must agree on one metric object, or
        # each keeps its own and one side's increments vanish.
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels: Mapping[str, Any], **kwargs):
        key = _metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(key, **kwargs)
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {key!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels: Any
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, key: str) -> bool:
        return key in self._metrics

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    def snapshot(
        self, run_id: str | None = None, meta: Mapping[str, Any] | None = None
    ) -> dict:
        """Freeze the registry into a schema-tagged, JSON-safe dict.

        Safe against concurrent writers: the key list is copied under
        the registry lock and each metric serialises itself under its
        own lock, so a snapshot taken mid-write sees a consistent value
        for every metric (never a torn histogram).
        """
        with self._lock:
            items = sorted(self._metrics.items())
        return {
            "schema": METRICS_SCHEMA,
            "run_id": run_id,
            "created_unix": time.time(),
            "meta": dict(meta or {}),
            "metrics": {key: metric.as_dict() for key, metric in items},
        }


#: The process-global default registry used by the module helpers.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


def enable() -> None:
    """Turn metric collection on (for the module helpers)."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    global ENABLED
    ENABLED = False


@contextmanager
def collecting(clear: bool = True):
    """Enable collection for a scope; yields the global registry."""
    if clear:
        _REGISTRY.clear()
    enable()
    try:
        yield _REGISTRY
    finally:
        disable()


def counter(name: str, **labels: Any):
    """Global-registry counter, or the shared no-op sink when disabled."""
    if not ENABLED:
        return _NULL
    return _REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: Any):
    if not ENABLED:
        return _NULL
    return _REGISTRY.gauge(name, **labels)


def histogram(name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels: Any):
    if not ENABLED:
        return _NULL
    return _REGISTRY.histogram(name, buckets=buckets, **labels)


# -- snapshot algebra ----------------------------------------------------------


def validate_snapshot(snapshot: Any) -> list[str]:
    """Structural check of a metrics snapshot; returns problems found."""
    problems: list[str] = []
    if not isinstance(snapshot, dict):
        return ["snapshot is not a JSON object"]
    if snapshot.get("schema") != METRICS_SCHEMA:
        problems.append(f"schema != {METRICS_SCHEMA!r}")
    run_id = snapshot.get("run_id")
    if run_id is not None and not isinstance(run_id, str):
        problems.append("run_id must be a string or null")
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, dict):
        return problems + ["missing 'metrics' object"]
    for key, entry in metrics.items():
        if not isinstance(entry, dict):
            problems.append(f"{key}: entry is not an object")
            continue
        kind = entry.get("type")
        if kind in ("counter", "gauge"):
            if "value" not in entry:
                problems.append(f"{key}: missing value")
            elif kind == "counter" and not isinstance(entry["value"], int):
                problems.append(f"{key}: counter value is not an integer")
        elif kind == "histogram":
            for field in ("count", "sum", "buckets"):
                if field not in entry:
                    problems.append(f"{key}: missing {field}")
        else:
            problems.append(f"{key}: unknown metric type {kind!r}")
    return problems


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge several snapshots: counters/histograms add, gauges take the
    last non-null value.  Mismatched types for one key raise."""
    snapshots = list(snapshots)
    merged: dict[str, dict] = {}
    run_id = None
    for snap in snapshots:
        run_id = snap.get("run_id") or run_id
        for key, entry in snap.get("metrics", {}).items():
            have = merged.get(key)
            if have is None:
                merged[key] = json.loads(json.dumps(entry))  # deep copy
                continue
            if have["type"] != entry["type"]:
                raise ValueError(
                    f"cannot merge {key!r}: {have['type']} vs {entry['type']}"
                )
            if entry["type"] == "counter":
                have["value"] += entry["value"]
            elif entry["type"] == "gauge":
                if entry["value"] is not None:
                    have["value"] = entry["value"]
            else:
                have["count"] += entry["count"]
                have["sum"] += entry["sum"]
                for bound in ("min", "max"):
                    vals = [v for v in (have[bound], entry[bound]) if v is not None]
                    if vals:
                        have[bound] = (min if bound == "min" else max)(vals)
                for b, c in entry["buckets"].items():
                    have["buckets"][b] = have["buckets"].get(b, 0) + c
    return {
        "schema": METRICS_SCHEMA,
        "run_id": run_id,
        "created_unix": time.time(),
        "meta": {"merged_from": len(snapshots)},
        "metrics": dict(sorted(merged.items())),
    }


def _scalar(entry: Any) -> float | None:
    """The comparable scalar of a metric entry (histograms: the count).

    Defensive against malformed entries (hand-edited snapshots, older
    schemas): anything without a usable scalar compares as None rather
    than raising, so ``obs diff`` can still render the rest.
    """
    if not isinstance(entry, dict):
        return None
    if entry.get("type") in ("counter", "gauge"):
        value = entry.get("value")
    else:
        value = entry.get("count")
    return value if isinstance(value, (int, float)) else None


def histogram_quantiles(
    entry: Mapping[str, Any], qs: Sequence[float] = (0.5, 0.9, 0.99)
) -> list[float | None]:
    """Quantile estimates from a snapshot histogram entry.

    Linear interpolation inside the (non-cumulative) bucket containing
    each quantile, using the previous bucket's upper bound as the lower
    edge; the open ``+Inf`` bucket and the first bucket's lower edge are
    pinned to the recorded ``max`` / ``min``, and every estimate is
    clamped to ``[min, max]``.  Returns one value per requested
    quantile, or None when the histogram is empty.
    """
    count = entry.get("count") or 0
    raw = entry.get("buckets") or {}
    if count <= 0 or not raw:
        return [None] * len(qs)
    bounds: list[tuple[float, int]] = []
    for bound, c in raw.items():
        upper = math.inf if str(bound) in ("+Inf", "inf", "Inf") else float(bound)
        bounds.append((upper, int(c)))
    bounds.sort(key=lambda item: item[0])
    vmin = entry.get("min")
    vmax = entry.get("max")
    results: list[float | None] = []
    for q in qs:
        target = max(0.0, min(1.0, float(q))) * count
        cumulative = 0
        lo = vmin if vmin is not None else 0.0
        value: float | None = None
        for upper, c in bounds:
            hi = upper
            if math.isinf(hi):
                hi = vmax if vmax is not None else lo
            if c > 0 and cumulative + c >= target:
                frac = (target - cumulative) / c
                value = lo + (hi - lo) * max(0.0, min(1.0, frac))
                break
            cumulative += c
            lo = hi
        if value is None:
            value = vmax if vmax is not None else lo
        if value is not None:
            if vmin is not None:
                value = max(vmin, value)
            if vmax is not None:
                value = min(vmax, value)
        results.append(value)
    return results


def diff_snapshots(
    a: dict, b: dict, only: Sequence[str] | None = None
) -> list[dict]:
    """Per-metric delta rows between two snapshots (``b`` minus ``a``).

    ``only`` is an optional list of ``fnmatch`` patterns over metric
    keys.  Each row carries the two scalar values, the absolute delta,
    the percentage change relative to ``a`` (None when undefined —
    missing metric or zero baseline), and a ``status``: ``"added"``
    (present only in ``b``), ``"removed"`` (only in ``a``), or
    ``"changed"``/``"same"``.  One-sided metrics are reported, never an
    error — comparing runs with different instrumentation is routine.
    """
    keys = sorted(set(a.get("metrics", {})) | set(b.get("metrics", {})))
    if only:
        keys = [k for k in keys if any(fnmatch.fnmatch(k, pat) for pat in only)]
    rows: list[dict] = []
    for key in keys:
        ea = a.get("metrics", {}).get(key)
        eb = b.get("metrics", {}).get(key)
        va = _scalar(ea) if ea is not None else None
        vb = _scalar(eb) if eb is not None else None
        delta = vb - va if va is not None and vb is not None else None
        pct = None
        if delta is not None and va:
            pct = 100.0 * delta / abs(va)
        if ea is None and eb is not None:
            status = "added"
        elif eb is None and ea is not None:
            status = "removed"
        elif delta:
            status = "changed"
        else:
            status = "same"
        rows.append(
            {
                "metric": key,
                "a": va,
                "b": vb,
                "delta": delta,
                "pct": pct,
                "status": status,
            }
        )
    return rows


# -- export --------------------------------------------------------------------

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return _PROM_BAD.sub("_", f"repro_{name}")


def _prom_labels(labels: Mapping[str, str], extra: str | None = None) -> str:
    parts = [f'{_PROM_BAD.sub("_", k)}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus textfile exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for key, entry in snapshot.get("metrics", {}).items():
        name, labels = split_key(key)
        pname = _prom_name(name)
        kind = entry["type"]
        if pname not in typed:
            lines.append(f"# TYPE {pname} {kind if kind != 'histogram' else 'histogram'}")
            typed.add(pname)
        if kind in ("counter", "gauge"):
            value = entry["value"]
            if value is None:
                value = math.nan
            lines.append(f"{pname}{_prom_labels(labels)} {value}")
        else:
            cumulative = 0
            for bound, count in entry["buckets"].items():
                cumulative += count
                le = 'le="' + str(bound) + '"'
                lines.append(f"{pname}_bucket{_prom_labels(labels, le)} {cumulative}")
            lines.append(f"{pname}_sum{_prom_labels(labels)} {entry['sum']}")
            lines.append(f"{pname}_count{_prom_labels(labels)} {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def live_prometheus(run_id: str | None = None) -> str:
    """Render the *live* global registry in Prometheus exposition format.

    This is the scrape path of long-running processes (the prediction
    server's ``/metrics`` endpoint): it snapshots the current registry
    state on every call, so a scraper always sees up-to-date counters
    without the process having to write textfiles.
    """
    return to_prometheus(_REGISTRY.snapshot(run_id=run_id))


def save_snapshot(path: str | os.PathLike, snapshot: dict) -> None:
    """Atomically write a snapshot (``*.prom`` -> Prometheus, else JSON)."""
    path = os.fspath(path)
    if path.endswith(".prom"):
        payload = to_prometheus(snapshot)
    else:
        payload = json.dumps(snapshot, indent=1, sort_keys=False)
    tmp = f"{path}.tmp-{os.getpid()}"
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_snapshot(path: str | os.PathLike) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
