"""Span tracing with a per-run correlation id (``repro.obs.trace``).

A :class:`TraceLog` appends one JSON object per line to an event log —
the same append-only discipline as the crash journal it sits next to —
and every event carries the run's ``run_id`` so metrics snapshots,
resume manifests, crash journals, and traces from one invocation can be
joined after the fact.

Events use the Chrome trace-event vocabulary directly (``"X"`` complete
events with microsecond ``ts``/``dur``, ``"i"`` instants), so
:func:`export_chrome` only has to wrap the lines in a ``traceEvents``
array for ``chrome://tracing`` / Perfetto flamegraph viewing.

Like metrics, tracing is opt-in: the module-level :func:`span` /
:func:`event` helpers are no-ops until a tracer is installed with
:func:`install`, and cost one global load + truth test when idle.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager, nullcontext
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "TraceLog",
    "current_run_id",
    "event",
    "export_chrome",
    "get_tracer",
    "install",
    "new_run_id",
    "read_events",
    "set_run_id",
    "span",
    "uninstall",
]

#: The process's run correlation id.  Stamped into metrics snapshots,
#: trace events, resume manifests, and crash journal entries.
_RUN_ID: str | None = None


def new_run_id() -> str:
    """A fresh 12-hex-digit correlation id."""
    return os.urandom(6).hex()


def set_run_id(run_id: str | None) -> None:
    global _RUN_ID
    _RUN_ID = run_id


def current_run_id(create: bool = False) -> str | None:
    """The process run id; with ``create=True``, mint one if unset."""
    global _RUN_ID
    if _RUN_ID is None and create:
        _RUN_ID = new_run_id()
    return _RUN_ID


class TraceLog:
    """Append-only JSONL trace writer bound to one run id."""

    def __init__(self, path: str | os.PathLike, run_id: str | None = None) -> None:
        self.path = Path(path)
        self.run_id = run_id or current_run_id(create=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def _emit(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        """Time a scope; emits one Chrome ``"X"`` complete event."""
        start_us = time.time() * 1e6
        t0 = time.perf_counter()
        error: str | None = None
        try:
            yield
        except BaseException as exc:
            error = type(exc).__name__
            raise
        finally:
            dur_us = (time.perf_counter() - t0) * 1e6
            if error is not None:
                args = {**args, "error": error}
            self._emit(
                {
                    "name": name,
                    "ph": "X",
                    "ts": start_us,
                    "dur": dur_us,
                    "pid": os.getpid(),
                    "tid": threading.get_ident() % 100_000,
                    "run_id": self.run_id,
                    "args": args,
                }
            )

    def complete(self, name: str, start_us: float, dur_us: float, **args: Any) -> None:
        """Emit an after-the-fact ``"X"`` complete event.

        For spans whose start was recorded elsewhere (e.g. a request
        dispatched in one thread and resolved in another): ``start_us``
        is an epoch-microsecond wall timestamp, matching :meth:`span`.
        """
        self._emit(
            {
                "name": name,
                "ph": "X",
                "ts": start_us,
                "dur": dur_us,
                "pid": os.getpid(),
                "tid": threading.get_ident() % 100_000,
                "run_id": self.run_id,
                "args": args,
            }
        )

    def event(self, name: str, **args: Any) -> None:
        """Emit an instant event (a point in time, not a duration)."""
        self._emit(
            {
                "name": name,
                "ph": "i",
                "ts": time.time() * 1e6,
                "s": "p",
                "pid": os.getpid(),
                "tid": threading.get_ident() % 100_000,
                "run_id": self.run_id,
                "args": args,
            }
        )

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "TraceLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Process-global tracer used by the module-level helpers (None = off).
_TRACER: TraceLog | None = None


def install(tracer: TraceLog) -> TraceLog:
    """Make ``tracer`` the process-global tracer for :func:`span`."""
    global _TRACER
    _TRACER = tracer
    return tracer


def uninstall() -> None:
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = None


def get_tracer() -> TraceLog | None:
    return _TRACER


def span(name: str, **args: Any):
    """Span on the installed tracer, or a free no-op context when off."""
    if _TRACER is None:
        return nullcontext()
    return _TRACER.span(name, **args)


def event(name: str, **args: Any) -> None:
    if _TRACER is not None:
        _TRACER.event(name, **args)


def read_events(path: str | os.PathLike) -> list[dict]:
    """Parse a JSONL trace, skipping torn (crash-truncated) lines."""
    events: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    except FileNotFoundError:
        pass
    return events


def export_chrome(jsonl_path, out_path: str | os.PathLike) -> int:
    """Convert JSONL trace(s) into one ``chrome://tracing`` JSON file.

    ``jsonl_path`` may be a single path or a sequence of paths; events
    from every file are merged into one timeline, sorted by timestamp.
    Each process writes its own trace file with a distinct ``pid``, so
    merging the server's and the shard workers' logs yields a single
    cross-process view in which request spans nest under the worker
    spans that executed them.  Returns the number of events exported.
    """
    if isinstance(jsonl_path, (str, os.PathLike)):
        paths = [jsonl_path]
    else:
        paths = list(jsonl_path)
    events: list[dict] = []
    for path in paths:
        events.extend(read_events(path))
    events.sort(key=lambda ev: ev.get("ts", 0))
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = out_path.with_suffix(out_path.suffix + f".tmp-{os.getpid()}")
    tmp.write_text(json.dumps(payload), encoding="utf-8")
    os.replace(tmp, out_path)
    return len(events)
