"""Sampled decision telemetry: online prediction quality vs Belady.

The conformance fuzzer can check a policy's *decisions* offline, but
nothing in the repo observed prediction *quality* while a replay or the
``repro.serve`` daemon was running.  This module closes that gap with a
process-global :class:`DecisionRecorder` behind the same
zero-cost-when-disabled contract as :mod:`repro.obs.metrics`:

* **Decision events** — the reference policies and the
  :mod:`repro.cache.fastpolicies` kernels call
  :func:`get_recorder` once per replay/feed and, only when a recorder is
  installed, report each sampled-set demand access (with the prediction
  the policy just made: friendly/averse, ISVM margin, Hawkeye counter)
  and each eviction (victim line, predicted-friendly bit, RRPV).
* **Deferred ground truth** — the recorder owns its own rolling OPTgen
  window (the same :class:`~repro.cache.fastpolicies._FlatOptGenSampler`
  machinery the kernels train with, over the same 64 sampled sets), so
  every recorded prediction is scored once its reuse resolves, *exactly*
  as the paper labels training data.  Live accuracy / precision /
  coverage gauges follow with no second simulation.
* **Model drift** — engines report model-state signals (ISVM weight
  norm, SHCT/counter-table saturation, DRRIP PSEL) at feed/call
  boundaries; the recorder tracks deltas between consecutive reports as
  histograms, plus the per-PC prediction-flip rate.
* **Worst decisions** — when a line the policy evicted later resolves
  as OPT-friendly (Belady would have kept it), the join of the eviction
  record and the scoring event is kept in a bounded table: the concrete
  accesses where the policy lost capacity to a wrong prediction.

Everything the recorder accumulates is exportable as a JSON artifact
(``repro.obs.insight/v1``) consumed by ``obs report``, and publishable
into the :mod:`repro.obs.metrics` registry (``insight.*`` keys, with
optional constant labels such as ``shard=N`` for the serving stack).

Disabled-path contract: when no recorder is installed the *only* cost
to the hot simulation loops is one module-function call per feed and
one ``is not None`` test per sampled access / eviction — never a dict
lookup or attribute chase per access.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from . import metrics as obs_metrics

__all__ = [
    "INSIGHT_SCHEMA",
    "DecisionRecorder",
    "active",
    "disable",
    "enable",
    "get_recorder",
    "load_artifact",
    "save_artifact",
    "validate_artifact",
]

#: Schema identifier stamped into every insight artifact.
INSIGHT_SCHEMA = "repro.obs.insight/v1"

#: The process-global recorder (None = disabled, the default).
_RECORDER: "DecisionRecorder | None" = None


class DecisionRecorder:
    """Scores sampled replacement decisions against a rolling OPTgen.

    One recorder serves one LLC geometry (``num_sets`` x
    ``associativity``); engines verify the geometry with
    :meth:`matches` before reporting so a stale recorder can never
    corrupt itself with mismatched set indices.
    """

    def __init__(
        self,
        num_sets: int,
        associativity: int,
        *,
        num_sampled_sets: int = 64,
        window_factor: int = 8,
        tracker_ways: int | None = None,
        sample_period: int = 32,
        max_worst: int = 50,
        max_events: int = 512,
        series_points: int = 512,
        labels: dict[str, Any] | None = None,
    ) -> None:
        # Deferred import: fastpolicies imports this module for its
        # hook checks, so the sampler class must resolve lazily.
        from ..cache.fastpolicies import _FlatOptGenSampler

        self.num_sets = num_sets
        self.associativity = associativity
        self.sample_period = max(1, sample_period)
        self.max_worst = max_worst
        self.max_events = max_events
        self.series_points = max(16, series_points)
        self.labels = dict(labels or {})
        self._sampler = _FlatOptGenSampler(
            num_sets, associativity, num_sampled_sets, window_factor, tracker_ways
        )
        self._sampled = self._sampler.sampled
        # Bound the eviction join index: generous relative to what the
        # OPTgen window can still resolve, tiny relative to a trace.
        self._evicted_cap = max(
            4096, 4 * self._sampler.window * len(self._sampled)
        )
        self.seq = 0
        self.sampled_accesses = 0
        self.evictions = 0
        self.sampled_evictions = 0
        self.scored = 0
        self.correct = 0
        self.tp = self.fp = self.fn = self.tn = 0
        self.flips = 0
        self.flip_checks = 0
        self.worst_total = 0
        self._last_pred: dict[int, bool] = {}
        self._evicted: dict[int, tuple] = {}
        self._heatmap: dict[int, list[int]] = {}
        # accesses/evictions/scored/mispredicted per sampled set
        self._series: list[tuple[int, float]] = []
        self._series_every = 64
        self._worst: list[dict] = []
        self._events: list[dict] = []
        # predicted reuse-distance bucket -> [predicted, resolved,
        # optgen-friendly] (fed by the frd family's bucket= reports).
        self._reuse_buckets: dict[int, list[int]] = {}
        self._model: dict[str, dict[str, float]] = {}
        self._drift: dict[str, dict[str, list]] = {}
        self._drift_points = 0

    # -- engine-facing hooks -------------------------------------------------
    def matches(self, num_sets: int, associativity: int) -> bool:
        """True when this recorder was built for the given geometry."""
        return self.num_sets == num_sets and self.associativity == associativity

    def on_demand_access(
        self,
        line: int,
        pc: int,
        predicted_friendly: bool,
        *,
        margin: float | None = None,
        counter: int | None = None,
        bucket: int | None = None,
    ) -> None:
        """One demand access: record the live prediction, feed OPTgen.

        Only sampled-set accesses are processed (unsampled lines return
        immediately), so engines may pre-filter with their own sampled
        flags or call unconditionally — the stats are identical.

        ``bucket`` is an optional quantized reuse-distance prediction
        (the frd family); the recorder histograms it against the
        OPTgen-resolved ground truth so reports can show predicted vs
        realized reuse distance per bucket.
        """
        set_index = line % self.num_sets
        if set_index not in self._sampled:
            return
        self.seq += 1
        self.sampled_accesses += 1
        predicted_friendly = bool(predicted_friendly)
        last = self._last_pred.get(pc)
        if last is not None:
            self.flip_checks += 1
            if last != predicted_friendly:
                self.flips += 1
        self._last_pred[pc] = predicted_friendly
        cell = self._heatmap.get(set_index)
        if cell is None:
            cell = self._heatmap[set_index] = [0, 0, 0, 0]
        cell[0] += 1
        if bucket is not None:
            row = self._reuse_buckets.get(bucket)
            if row is None:
                row = self._reuse_buckets[bucket] = [0, 0, 0]
            row[0] += 1
        signal = margin if margin is not None else counter
        context = (predicted_friendly, self.seq, pc, line, signal, bucket)
        for _tok, ctx, label in self._sampler.access(line, pc, context):
            self._score(ctx, label)

    def on_eviction(
        self,
        line: int,
        *,
        predicted_friendly: bool | None = None,
        rrpv: int | None = None,
        pc: int | None = None,
    ) -> None:
        """One eviction decision (any set; join state kept for sampled)."""
        self.evictions += 1
        set_index = line % self.num_sets
        if set_index not in self._sampled:
            return
        self.seq += 1
        self.sampled_evictions += 1
        cell = self._heatmap.get(set_index)
        if cell is None:
            cell = self._heatmap[set_index] = [0, 0, 0, 0]
        cell[1] += 1
        evicted = self._evicted
        evicted[line] = (self.seq, predicted_friendly, rrpv, pc)
        if len(evicted) > self._evicted_cap:
            # Drop the oldest half by eviction seq; amortized O(1).
            cut = sorted(e[0] for e in evicted.values())[len(evicted) // 2]
            for key in [l for l, e in evicted.items() if e[0] < cut]:
                del evicted[key]
        if self.sampled_evictions % self.sample_period == 0:
            self._log_event(
                {
                    "kind": "eviction",
                    "seq": self.seq,
                    "line": line,
                    "set": set_index,
                    "predicted_friendly": predicted_friendly,
                    "rrpv": rrpv,
                }
            )

    def record_model_state(self, policy: str, **signals: float) -> None:
        """Boundary report of model-state signals; tracks drift deltas.

        Call at feed()/chunk boundaries, never per access.  Each signal
        is compared against its previous value for the same policy; the
        absolute delta feeds an ``insight.drift.<signal>`` histogram
        (when metrics are enabled) and a bounded in-recorder series for
        the HTML report.
        """
        previous = self._model.setdefault(policy, {})
        series = self._drift.setdefault(policy, {})
        for name, value in signals.items():
            value = float(value)
            prev = previous.get(name)
            previous[name] = value
            points = series.setdefault(name, [])
            points.append([self.seq, value])
            if len(points) > self.series_points:
                del points[::2]
            self._drift_points += 1
            if obs_metrics.ENABLED:
                obs_metrics.gauge(
                    f"insight.model.{name}", policy=policy, **self.labels
                ).set(value)
                if prev is not None:
                    obs_metrics.histogram(
                        f"insight.drift.{name}",
                        buckets=_DRIFT_BUCKETS,
                        policy=policy,
                        **self.labels,
                    ).observe(abs(value - prev))

    # -- scoring -------------------------------------------------------------
    def _score(self, ctx: tuple, label: bool) -> None:
        predicted, seq0, pc, line, signal, bucket = ctx
        if bucket is not None:
            row = self._reuse_buckets.get(bucket)
            if row is not None:
                row[1] += 1
                if label:
                    row[2] += 1
        self.scored += 1
        if predicted == label:
            self.correct += 1
        if predicted:
            if label:
                self.tp += 1
            else:
                self.fp += 1
        elif label:
            self.fn += 1
        else:
            self.tn += 1
        set_index = line % self.num_sets
        cell = self._heatmap.get(set_index)
        if cell is None:
            cell = self._heatmap[set_index] = [0, 0, 0, 0]
        cell[2] += 1
        if predicted != label:
            cell[3] += 1
        evicted = self._evicted.get(line)
        if label and evicted is not None and evicted[0] >= seq0:
            # OPT would have kept this line; the policy evicted it
            # before its (window-resolved) reuse arrived.
            self.worst_total += 1
            if len(self._worst) < self.max_worst:
                self._worst.append(
                    {
                        "line": line,
                        "set": set_index,
                        "pc": pc,
                        "predicted_friendly": predicted,
                        "signal": signal,
                        "inserted_seq": seq0,
                        "evicted_seq": evicted[0],
                        "resolved_seq": self.seq,
                        "victim_predicted_friendly": evicted[1],
                        "victim_rrpv": evicted[2],
                    }
                )
        if self.scored % self._series_every == 0:
            self._series.append((self.seq, self.correct / self.scored))
            if len(self._series) > self.series_points:
                del self._series[::2]
                self._series_every *= 2

    def _log_event(self, event: dict) -> None:
        if len(self._events) >= self.max_events:
            del self._events[:: 2]
        self._events.append(event)

    # -- summaries -----------------------------------------------------------
    @property
    def accuracy(self) -> float:
        """Fraction of resolved sampled decisions predicted correctly."""
        return self.correct / max(1, self.scored)

    @property
    def precision(self) -> float:
        """Of friendly predictions, the fraction OPT confirms."""
        return self.tp / max(1, self.tp + self.fp)

    @property
    def coverage(self) -> float:
        """Fraction of sampled accesses whose ground truth has resolved."""
        return self.scored / max(1, self.sampled_accesses)

    @property
    def flip_rate(self) -> float:
        """Per-PC prediction flips per repeated sampled prediction."""
        return self.flips / max(1, self.flip_checks)

    def summary(self) -> dict:
        return {
            "sampled_accesses": self.sampled_accesses,
            "scored": self.scored,
            "correct": self.correct,
            "accuracy": self.accuracy,
            "precision": self.precision,
            "coverage": self.coverage,
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
            "tn": self.tn,
            "flips": self.flips,
            "flip_checks": self.flip_checks,
            "flip_rate": self.flip_rate,
            "evictions": self.evictions,
            "sampled_evictions": self.sampled_evictions,
            "worst_decisions": self.worst_total,
            "reuse_buckets": {
                str(b): {
                    "predicted": row[0],
                    "resolved": row[1],
                    "optgen_friendly": row[2],
                }
                for b, row in sorted(self._reuse_buckets.items())
            },
            "model": {p: dict(v) for p, v in self._model.items()},
        }

    def publish(self) -> None:
        """Mirror the live quality gauges into the obs metrics registry."""
        if not obs_metrics.ENABLED:
            return
        labels = self.labels
        obs_metrics.gauge("insight.accuracy", **labels).set(self.accuracy)
        obs_metrics.gauge("insight.precision", **labels).set(self.precision)
        obs_metrics.gauge("insight.coverage", **labels).set(self.coverage)
        obs_metrics.gauge("insight.flip_rate", **labels).set(self.flip_rate)
        obs_metrics.gauge("insight.scored", **labels).set(self.scored)
        obs_metrics.gauge("insight.sampled_accesses", **labels).set(
            self.sampled_accesses
        )
        obs_metrics.gauge("insight.evictions", **labels).set(self.evictions)
        obs_metrics.gauge("insight.worst_decisions", **labels).set(
            self.worst_total
        )

    def to_artifact(self, *, run_id: str | None = None) -> dict:
        """JSON-safe dump of everything the HTML report renders."""
        from .trace import current_run_id

        return {
            "schema": INSIGHT_SCHEMA,
            "run_id": run_id or current_run_id(),
            "geometry": {
                "num_sets": self.num_sets,
                "associativity": self.associativity,
                "sampled_sets": sorted(self._sampled),
            },
            "labels": dict(self.labels),
            "summary": self.summary(),
            "accuracy_series": [[s, a] for s, a in self._series],
            "heatmap": {
                str(s): {
                    "accesses": c[0],
                    "evictions": c[1],
                    "scored": c[2],
                    "mispredicted": c[3],
                }
                for s, c in sorted(self._heatmap.items())
            },
            "worst": list(self._worst),
            "drift": {
                policy: {name: list(points) for name, points in sig.items()}
                for policy, sig in self._drift.items()
            },
            "events": list(self._events),
        }


#: Drift histogram buckets: deltas span saturating-counter steps (~1)
#: through full ISVM weight-norm swings (thousands).
_DRIFT_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0)


# -- module-level switch ------------------------------------------------------


def enable(config=None, **kwargs) -> DecisionRecorder:
    """Install a process-global recorder for the given LLC geometry.

    ``config`` follows :func:`repro.cache.fastsim.replay`: a
    :class:`~repro.cache.config.HierarchyConfig`, a single LLC
    :class:`~repro.cache.config.CacheConfig`, or None for the default
    scaled hierarchy.  Remaining keyword arguments go to
    :class:`DecisionRecorder`.
    """
    global _RECORDER
    from ..cache.fastsim import _llc_config

    llc = _llc_config(config)
    _RECORDER = DecisionRecorder(llc.num_sets, llc.associativity, **kwargs)
    return _RECORDER


def disable() -> DecisionRecorder | None:
    """Remove the global recorder; returns it for a final harvest."""
    global _RECORDER
    recorder, _RECORDER = _RECORDER, None
    return recorder


def get_recorder() -> DecisionRecorder | None:
    """The installed recorder, or None (the common, zero-cost case)."""
    return _RECORDER


def active() -> bool:
    return _RECORDER is not None


# -- artifact I/O -------------------------------------------------------------


def save_artifact(path: str | Path, artifact: dict) -> None:
    """Atomically write an insight artifact next to metrics/trace files."""
    from ..traces.io import atomic_write_text

    atomic_write_text(Path(path), json.dumps(artifact, indent=1))


def load_artifact(path: str | Path) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def validate_artifact(payload: Any) -> list[str]:
    """Structural check of an insight artifact; returns problems found."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["artifact is not an object"]
    if payload.get("schema") != INSIGHT_SCHEMA:
        problems.append(f"schema != {INSIGHT_SCHEMA}")
    summary = payload.get("summary")
    if not isinstance(summary, dict):
        problems.append("missing summary")
    else:
        for field in ("sampled_accesses", "scored", "accuracy"):
            if field not in summary:
                problems.append(f"summary missing {field!r}")
    for field in ("accuracy_series", "worst"):
        if not isinstance(payload.get(field), list):
            problems.append(f"{field} is not a list")
    for field in ("heatmap", "drift"):
        if not isinstance(payload.get(field), dict):
            problems.append(f"{field} is not an object")
    return problems
