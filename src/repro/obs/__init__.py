"""Observability: metrics, tracing, and run introspection.

``repro.obs`` is a *leaf* package — at import time it pulls in nothing
from the rest of ``repro`` so every other layer (cache, core, ml,
robust, perf, eval) can depend on it without cycles (``insight`` and
``report`` defer their cache/traces imports to call time).  Collection
is opt-in and the disabled fast path costs one module-attribute check
per instrumentation site.

Typical wiring (what ``python -m repro.eval`` does under
``--metrics-out`` / ``--trace-out``)::

    from repro import obs

    obs.metrics.enable()
    obs.trace.install(obs.trace.TraceLog("run.trace.jsonl"))
    ... run experiments ...
    snapshot = obs.metrics.registry().snapshot(
        run_id=obs.trace.current_run_id()
    )
    obs.metrics.save_snapshot("metrics.json", snapshot)
"""

from . import insight, instrument, metrics, progress, report, trace

__all__ = ["insight", "instrument", "metrics", "progress", "report", "trace"]
