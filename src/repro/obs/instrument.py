"""Bridges from runtime objects onto the metrics registry.

Everything here is duck-typed and guarded by the :data:`metrics.ENABLED`
flag at the call site, so the simulator/training/supervisor layers can
call these helpers unconditionally.  The helpers read whatever
introspection the object offers (``CacheStats`` counters, a policy's
``introspect()`` payload, ``ISVMTable.health()``) and mirror it onto
counters/gauges/histograms — they never mutate the source object.
"""

from __future__ import annotations

from typing import Any, Mapping

from . import metrics

__all__ = [
    "record_cache_stats",
    "record_guard_report",
    "record_policy_introspection",
]


def record_cache_stats(stats: Any, prefix: str = "cache", **labels: Any) -> None:
    """Mirror a :class:`repro.cache.stats.CacheStats` onto the registry.

    ``prefix`` namespaces the metrics (``cache``, ``sim`` ...); extra
    labels typically carry the level (``level=llc``) and benchmark.
    """
    if not metrics.ENABLED:
        return
    for field in (
        "demand_hits",
        "demand_misses",
        "writeback_hits",
        "writeback_misses",
        "bypasses",
        "evictions",
        "dirty_evictions",
    ):
        value = getattr(stats, field, None)
        if value is not None:
            metrics.counter(f"{prefix}.{field}", **labels).inc(value)
    for field in ("per_core_hits", "per_core_misses"):
        per_core = getattr(stats, field, None)
        if per_core:
            name = f"{prefix}.{field[len('per_core_'):]}"
            for core, value in per_core.items():
                metrics.counter(name, core=core, **labels).inc(value)
    miss_rate = getattr(stats, "demand_miss_rate", None)
    if miss_rate is not None:
        metrics.gauge(f"{prefix}.demand_miss_rate", **labels).set(miss_rate)


def _record_isvm_health(health: Any, **labels: Any) -> None:
    for field in (
        "num_entries",
        "active_entries",
        "active_weights",
        "saturated_weights",
        "max_abs_weight",
        "saturated_fraction",
    ):
        value = getattr(health, field, None)
        if value is not None:
            metrics.gauge(f"policy.isvm.{field}", **labels).set(value)


def _record_occupancy(sampler: Any, **labels: Any) -> None:
    histogram_fn = getattr(sampler, "occupancy_histogram", None)
    if histogram_fn is None:
        return
    occupancy: Mapping[int, int] = histogram_fn()
    if not occupancy:
        return
    assoc = getattr(sampler, "associativity", max(occupancy))
    hist = metrics.histogram(
        "policy.optgen.occupancy",
        buckets=[float(i) for i in range(int(assoc) + 1)],
        **labels,
    )
    for level, count in occupancy.items():
        hist.observe(level, n=count)


def record_policy_introspection(policy: Any, **labels: Any) -> None:
    """Publish a policy's internal signals (confusion, ISVM health,
    OPTgen occupancy) after a simulation run.

    Works for any policy; policies without a given signal contribute
    nothing for it.  Labels usually carry ``policy=`` and ``benchmark=``.
    """
    if not metrics.ENABLED:
        return
    name = getattr(policy, "name", type(policy).__name__)
    labels.setdefault("policy", name)

    checks = getattr(policy, "prediction_checks", None)
    correct = getattr(policy, "prediction_correct", None)
    if checks is not None and correct is not None:
        metrics.counter("policy.predictions.checked", **labels).inc(checks)
        metrics.counter("policy.predictions.correct", **labels).inc(correct)
        metrics.counter("policy.predictions.wrong", **labels).inc(checks - correct)
        if checks:
            metrics.gauge("policy.predictions.accuracy", **labels).set(
                correct / checks
            )

    isvm = getattr(policy, "isvm", None)
    if isvm is not None and hasattr(isvm, "health"):
        _record_isvm_health(isvm.health(), **labels)
        stats = getattr(isvm, "stats", None)
        if stats is not None:
            for field in ("trainings", "gated_updates", "predictions"):
                value = getattr(stats, field, None)
                if value is not None:
                    metrics.counter(f"policy.isvm.{field}", **labels).inc(value)

    sampler = getattr(policy, "sampler", None)
    if sampler is not None:
        _record_occupancy(sampler, **labels)


def record_guard_report(report: Any, **labels: Any) -> None:
    """Mirror a :class:`repro.robust.guards.GuardReport` onto counters."""
    if not metrics.ENABLED:
        return
    for event in getattr(report, "events", ()):
        kind = getattr(event, "kind", None) or str(event)
        metrics.counter("train.guard.events", kind=kind, **labels).inc()
