"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires bdist_wheel; in fully offline environments
without the wheel package, use `python setup.py develop` instead.
"""

from setuptools import setup

setup()
