#!/usr/bin/env python3
"""4-core shared-LLC simulation: weighted speedup over LRU (Figure 13).

Draws random 4-benchmark mixes from the 33-workload suite, runs each mix
on a 4-core system with a shared LLC under several replacement policies,
and reports the weighted speedup over LRU per mix and on average.

Run:  python examples/multicore_mixes.py [--mixes N] [--cores N]
"""

import argparse

from repro.eval import (
    DEFAULT,
    ArtifactCache,
    ExperimentConfig,
    format_table,
    summarize_mixes,
    weighted_speedup_sweep,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mixes", type=int, default=4)
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--length", type=int, default=40_000)
    args = parser.parse_args()

    config = ExperimentConfig(trace_length=args.length)
    cache = ArtifactCache(config)
    results = weighted_speedup_sweep(
        config,
        num_mixes=args.mixes,
        cores=args.cores,
        policies=("hawkeye", "mpppb", "ship++", "glider"),
        cache=cache,
    )
    print(format_table(
        [r.as_row() for r in results],
        f"Weighted speedup over LRU (%), {args.cores}-core mixes",
    ))
    print()
    summary = summarize_mixes(results)
    print(format_table(
        [{"policy": k, "avg weighted speedup %": v} for k, v in
         sorted(summary.items(), key=lambda item: -item[1])],
        "Average across mixes (the paper's headline multi-core numbers)",
    ))


if __name__ == "__main__":
    main()
