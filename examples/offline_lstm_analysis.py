#!/usr/bin/env python3
"""Train the offline attention LSTM and interpret its attention weights.

Reproduces the paper's Section 4 pipeline end to end on one workload:

1. generate the workload and label its LLC stream with Belady's MIN;
2. train the attention-based LSTM (NumPy implementation) and the three
   offline comparators (Hawkeye counters, ordered-history SVM, ISVM);
3. sweep the attention scaling factor f and report weight sparsity
   (Figure 4) and the per-target dominant sources (Figure 5);
4. verify the anchor-PC story on the call-context workload (Table 4).

Run:  python examples/offline_lstm_analysis.py  (takes a few minutes)
"""

from repro.eval import (
    ArtifactCache,
    ExperimentConfig,
    anchor_pc_analysis,
    attention_cdf,
    attention_heatmap,
    format_table,
)
from repro.ml import (
    OfflineHawkeye,
    OfflineISVM,
    OrderedHistorySVM,
    train_linear_model,
    train_lstm,
)


def main() -> None:
    config = ExperimentConfig(
        trace_length=40_000,
        lstm_embedding=24,
        lstm_hidden=24,
        lstm_history=16,
        lstm_epochs=4,
    )
    cache = ArtifactCache(config)
    benchmark = "omnetpp"
    labelled = cache.labelled(benchmark)
    print(f"{benchmark}: {len(labelled)} LLC accesses, "
          f"{labelled.vocab_size} PCs, "
          f"{labelled.labels.mean():.1%} cache-friendly under MIN\n")

    # -- offline model comparison (Figure 9, one benchmark) ---------------
    rows = []
    for name, model, epochs in (
        ("Hawkeye counters", OfflineHawkeye(), 5),
        ("Perceptron (ordered)", OrderedHistorySVM(history_length=3), 5),
        ("Offline ISVM", OfflineISVM(k=5), 5),
    ):
        result = train_linear_model(model, labelled, epochs=epochs)
        rows.append({"model": name, "test accuracy %": 100 * result.test_accuracy})
    lstm_model, lstm_result = train_lstm(
        labelled, config.lstm_config(labelled.vocab_size), epochs=config.lstm_epochs
    )
    rows.append(
        {"model": "Attention LSTM", "test accuracy %": 100 * lstm_result.test_accuracy}
    )
    print(format_table(rows, "Offline accuracy (Figure 9, one workload)"))

    # -- attention sparsity sweep (Figure 4) ------------------------------
    print("\nAttention scaling sweep (Figure 4):")
    cdf = attention_cdf(config, benchmark=benchmark, scales=(1.0, 3.0, 5.0), cache=cache)
    print(format_table([r.as_row() for r in cdf]))
    print("-> accuracy stays flat while the weight mass concentrates.")

    # -- dominant sources (Figure 5) ---------------------------------------
    heatmap = attention_heatmap(
        config, benchmark=benchmark, scale=5.0, num_targets=60, cache=cache
    )
    print(f"\nFigure 5: {heatmap.matrix.shape[0]} targets; "
          f"{heatmap.sparsity(0.3):.0%} of targets put >=30% of their "
          "attention on a single source access.")

    # -- anchor-PC semantics (Table 4) ---------------------------------------
    print("\nAnchor-PC analysis (Table 4):")
    results = anchor_pc_analysis(config, benchmark=benchmark, cache=cache)
    print(format_table([r.as_row() for r in results]))


if __name__ == "__main__":
    main()
