#!/usr/bin/env python3
"""Extending the framework: write and evaluate your own policy.

Implements a tiny "protect-on-second-touch" policy against the
ReplacementPolicy interface, registers it, and benchmarks it against the
built-in policies on a scan-heavy workload.  Use this as the template
for experimenting with new replacement ideas on the Glider substrate.

Run:  python examples/custom_policy.py
"""

from typing import Sequence

from repro.cache import (
    CacheLine,
    CacheRequest,
    ReplacementPolicy,
    filter_to_llc_stream,
    scaled_hierarchy,
    simulate_llc,
)
from repro.eval import format_table
from repro.policies import make_policy, register_policy
from repro.traces import get_trace


class SecondTouchPolicy(ReplacementPolicy):
    """Protect lines only after they prove reuse (a segmented-LRU flavour).

    New lines are probationary; a hit promotes them to protected.  The
    victim search prefers probationary lines (LRU among them), falling
    back to the LRU protected line.
    """

    name = "second_touch"

    def on_hit(self, set_index: int, way: int, request: CacheRequest) -> None:
        self.cache.sets[set_index][way].policy_state["protected"] = True

    def victim(
        self, set_index: int, request: CacheRequest, ways: Sequence[CacheLine]
    ) -> int:
        invalid = self.first_invalid(ways)
        if invalid is not None:
            return invalid
        probation = [
            w for w, line in enumerate(ways)
            if not line.policy_state.get("protected", False)
        ]
        candidates = probation if probation else range(len(ways))
        return min(candidates, key=lambda w: ways[w].last_touch)

    def on_fill(self, set_index: int, way: int, request: CacheRequest) -> None:
        self.cache.sets[set_index][way].policy_state["protected"] = False


def main() -> None:
    register_policy("second_touch", SecondTouchPolicy)
    config = scaled_hierarchy(scale=32)
    rows = []
    for benchmark in ("libquantum", "mcf", "astar", "sphinx3"):
        stream = filter_to_llc_stream(
            get_trace(benchmark, 40_000, llc_lines=config.llc.num_lines), config
        )
        row = {"workload": benchmark}
        for name in ("lru", "second_touch", "ship++", "glider"):
            stats = simulate_llc(stream, make_policy(name), config)
            row[name] = stats.demand_miss_rate
        rows.append(row)
    print(format_table(rows, "Demand miss rates (custom policy vs built-ins)"))
    print("\nsecond_touch resists scans better than LRU but has no notion "
          "of optimal behaviour — compare against glider's learned policy.")


if __name__ == "__main__":
    main()
