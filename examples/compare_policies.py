#!/usr/bin/env python3
"""Compare every registered replacement policy across several workloads.

Sweeps the full policy zoo (classic heuristics, learning-based CRC2
contenders, Glider, and the MIN bound) over a mixed set of workloads and
prints a miss-rate matrix plus average miss reduction over LRU — a
miniature of the paper's Figure 11 with *all* policies included.

Run:  python examples/compare_policies.py [--length N] [--benchmarks a,b,c]
"""

import argparse

from repro.cache import filter_to_llc_stream, scaled_hierarchy, simulate_llc
from repro.eval import format_table
from repro.policies import BeladyPolicy, available_policies, make_policy
from repro.traces import get_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=50_000,
                        help="accesses per workload trace")
    parser.add_argument(
        "--benchmarks",
        default="mcf,omnetpp,libquantum,astar,gcc,bfs",
        help="comma-separated workload names",
    )
    args = parser.parse_args()
    benchmarks = args.benchmarks.split(",")
    config = scaled_hierarchy(scale=32)

    rows = []
    reductions: dict[str, list[float]] = {}
    for benchmark in benchmarks:
        trace = get_trace(benchmark, length=args.length, llc_lines=config.llc.num_lines)
        stream = filter_to_llc_stream(trace, config)
        row = {"workload": benchmark}
        lru_rate = simulate_llc(stream, make_policy("lru"), config).demand_miss_rate
        row["lru"] = lru_rate
        for name in available_policies():
            if name == "lru":
                continue
            rate = simulate_llc(stream, make_policy(name), config).demand_miss_rate
            row[name] = rate
            if lru_rate > 0:
                reductions.setdefault(name, []).append(
                    100 * (lru_rate - rate) / lru_rate
                )
        row["MIN"] = simulate_llc(
            stream, BeladyPolicy.from_stream(stream), config
        ).demand_miss_rate
        rows.append(row)
        print(f"done: {benchmark} ({len(stream)} LLC accesses)")

    print()
    print(format_table(rows, "Demand miss rate per policy"))
    print()
    summary = [
        {"policy": name, "avg miss reduction vs LRU %": sum(v) / len(v)}
        for name, v in sorted(
            reductions.items(), key=lambda item: -sum(item[1]) / len(item[1])
        )
    ]
    print(format_table(summary, "Average across workloads"))


if __name__ == "__main__":
    main()
