#!/usr/bin/env python3
"""Quickstart: simulate Glider against LRU on one workload.

Builds a synthetic mcf-like trace, filters it through L1/L2 to obtain the
LLC access stream, and replays that stream against LRU, Hawkeye, Glider
and Belady's optimal bound.

Run:  python examples/quickstart.py
"""

from repro.cache import filter_to_llc_stream, scaled_hierarchy, simulate_llc
from repro.core import GliderPolicy
from repro.policies import BeladyPolicy, make_policy
from repro.traces import get_trace


def main() -> None:
    config = scaled_hierarchy(scale=32)  # Table 1, scaled for laptop runs
    trace = get_trace("mcf", length=60_000, llc_lines=config.llc.num_lines)
    print(f"workload: {trace.name} — {trace.num_accesses} accesses, "
          f"{len(trace.unique_pcs())} PCs, {len(trace.unique_lines())} lines")

    stream = filter_to_llc_stream(trace, config)
    print(f"LLC stream: {len(stream)} accesses "
          f"(L1 hits {stream.l1_hits}, L2 hits {stream.l2_hits})\n")

    results = {}
    for name in ("lru", "hawkeye", "glider"):
        stats = simulate_llc(stream, make_policy(name), config)
        results[name] = stats.demand_miss_rate
    results["belady (MIN)"] = simulate_llc(
        stream, BeladyPolicy.from_stream(stream), config
    ).demand_miss_rate

    lru = results["lru"]
    print(f"{'policy':<14} {'miss rate':>9} {'vs LRU':>8}")
    for name, rate in sorted(results.items(), key=lambda item: item[1]):
        reduction = 100 * (lru - rate) / lru if lru else 0.0
        print(f"{name:<14} {rate:>9.4f} {reduction:>+7.1f}%")

    glider = GliderPolicy()
    simulate_llc(stream, glider, config)
    print(f"\nGlider online predictor accuracy: {glider.online_accuracy:.1%} "
          f"({glider.prediction_checks} labelled samples)")
    print(f"Glider ISVM table storage: {glider.predictor_storage_bytes() / 1024:.1f} KB")


if __name__ == "__main__":
    main()
