"""Figure 14: accuracy versus history length for the three models.

Paper findings: the LSTM keeps improving up to a ~30-PC history; the
offline ISVM saturates around 5-6 *unique* PCs (approaching the LSTM);
the ordered-history Perceptron saturates around 4 and below the ISVM.
"""

from repro.eval import format_table, sequence_length_sweep

from .conftest import SWEEP_SUBSET, run_once

LSTM_LENGTHS = (10, 20, 30)
LINEAR_KS = (1, 2, 3, 4, 5, 6, 8)


def test_fig14_sequence_length(benchmark, artifacts, bench_config):
    def experiment():
        return sequence_length_sweep(
            bench_config,
            benchmarks=SWEEP_SUBSET,
            lstm_lengths=LSTM_LENGTHS,
            linear_ks=LINEAR_KS,
            linear_epochs=5,
            cache=artifacts,
        )

    curves = run_once(benchmark, experiment)
    print()
    print(format_table(curves.rows(), "Figure 14 (reproduced)"))
    isvm_sat = curves.saturation_point("isvm")
    perc_sat = curves.saturation_point("perceptron")
    print(f"ISVM saturates at k={isvm_sat}; Perceptron saturates at k={perc_sat}")
    from repro.eval.plots import ascii_plot

    print(ascii_plot(
        {"ISVM": curves.isvm, "Perceptron": curves.perceptron},
        title="accuracy vs history length (linear models)",
        y_label="accuracy",
    ))

    # Shape 1: a longer unique-PC history helps the ISVM (k=5 over k=1).
    assert curves.isvm[5] > curves.isvm[1] - 0.005
    # Shape 2: the ISVM's plateau is at or above the Perceptron's.
    assert max(curves.isvm.values()) >= max(curves.perceptron.values()) - 0.01
    # Shape 3: the ISVM reaches (near) peak by k<=6, the paper's claim.
    assert isvm_sat <= 6
    # Shape 4: the best LSTM accuracy is competitive with the best ISVM.
    assert max(curves.lstm.values()) >= max(curves.isvm.values()) - 0.06
