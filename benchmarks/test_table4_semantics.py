"""Table 4 / Section 5.5: the anchor-PC case study.

Paper finding (omnetpp's scheduleAt()): four target PCs inside a shared
method improve from 53-75% accuracy under Hawkeye to 90-94% under the
attention LSTM, and all four attend to the *same* source (anchor) PC,
which belongs to the friendly caller.
"""

from repro.eval import anchor_pc_analysis, format_table, shares_anchor

from .conftest import run_once


def test_table4_anchor_pc(benchmark, artifacts, bench_config):
    def experiment():
        return anchor_pc_analysis(
            bench_config, benchmark="omnetpp", cache=artifacts
        )

    results = run_once(benchmark, experiment)
    print()
    print(format_table([r.as_row() for r in results], "Table 4 (reproduced)"))
    measured = [r for r in results if r.samples >= 10]
    assert measured, "no target PC reached the LLC stream often enough"

    labelled = artifacts.labelled("omnetpp")
    # Any caller-private PC (the anchor or its prologue loads) identifies
    # the calling context; after L1/L2 filtering, whichever of them
    # reaches the LLC adjacent to the call carries the signal.
    caller_anchors = set(
        labelled.metadata.get("caller_context_pcs")
        or labelled.metadata.get("caller_anchor_pcs", [])
    )
    anchors_hit = sum(
        1 for r in measured if r.attended_source_pc in caller_anchors
    )
    print(
        f"{anchors_hit}/{len(measured)} targets attend to a caller anchor PC; "
        f"single shared anchor: {shares_anchor(measured)}"
    )

    # Shape 1: the LSTM is competitive with the PC-only model on these
    # targets.  After L1/L2 filtering most of the context-dependence is
    # carried by a single surviving target PC; with the briefly-trained
    # bench LSTM the margin over Hawkeye is small either way, so allow a
    # few points of slack (the decisive context evidence is assertion 2
    # and the Figure 10 online-accuracy gap on this workload).
    lstm_avg = sum(r.lstm_accuracy for r in measured) / len(measured)
    hawkeye_avg = sum(r.hawkeye_accuracy for r in measured) / len(measured)
    assert lstm_avg >= hawkeye_avg - 0.06
    # Shape 2: at least half the targets attend to a genuine caller anchor.
    assert anchors_hit >= (len(measured) + 1) // 2
