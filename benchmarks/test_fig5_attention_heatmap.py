"""Figure 5: attention-weight matrices of consecutive memory accesses.

Paper finding: with a large scaling factor, each target access places
dominant weight on just a few source accesses, and the same source
dominates consecutive targets (oblique lines in the heatmap).
Reproduced shape: a large fraction of targets concentrate their
attention mass on one source offset.
"""

import numpy as np

from repro.eval import attention_heatmap

from .conftest import run_once


def test_fig5_attention_heatmap(benchmark, artifacts, bench_config):
    def experiment():
        return attention_heatmap(
            bench_config,
            benchmark="omnetpp",
            scale=5.0,
            num_targets=100,
            cache=artifacts,
        )

    heatmap = run_once(benchmark, experiment)
    matrix = heatmap.matrix
    print()
    print(f"heatmap: {matrix.shape[0]} targets x {matrix.shape[1]} offsets")
    top_mass = matrix.max(axis=1)
    top2_mass = np.sort(matrix, axis=1)[:, -2:].sum(axis=1)
    print(f"mean top-1 source weight: {top_mass.mean():.3f}")
    print(f"mean top-2 source weight: {top2_mass.mean():.3f}")
    print(f"targets with a >=30% dominant source: {heatmap.sparsity(0.3):.0%}")

    # ASCII rendition of the first 10 targets (the Figure 5(b) panel).
    for t in range(min(10, matrix.shape[0])):
        row = "".join(
            "#" if w > 0.3 else ("+" if w > 0.1 else ".") for w in matrix[t]
        )
        print(f"target {t:2d} |{row}|")

    # Shape: attention is concentrated, not uniform.
    uniform_level = 1.0 / matrix.shape[1]
    assert top_mass.mean() > 3 * uniform_level
    assert heatmap.sparsity(0.2) > 0.3
