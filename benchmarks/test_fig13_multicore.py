"""Figure 13: 4-core weighted speedup over LRU across mixes.

Paper: 100 mixes; average weighted speedups Glider 14.7%, Hawkeye 13.6%,
MPPPB 13.2%, SHiP++ 11.4%.  We run a reduced mix count (the S-curve
shape needs ~10 points; the paper's ordering claim is about the mean).
"""

from repro.eval import format_table, summarize_mixes, weighted_speedup_sweep

from .conftest import run_once

NUM_MIXES = 5


def test_fig13_weighted_speedup(benchmark, artifacts, bench_config):
    def experiment():
        return weighted_speedup_sweep(
            bench_config,
            num_mixes=NUM_MIXES,
            cores=4,
            quota=bench_config.trace_length // 2,
            cache=artifacts,
        )

    results = run_once(benchmark, experiment)
    print()
    rows = [r.as_row() for r in results]
    print(format_table(rows, f"Figure 13 (reproduced, {NUM_MIXES} mixes)"))
    summary = summarize_mixes(results)
    print("averages (%):", {k: round(v, 2) for k, v in summary.items()})
    from repro.eval.plots import ascii_plot

    curves = {
        policy: {
            float(i): v
            for i, v in enumerate(
                sorted(r.weighted_speedup_percent[policy] for r in results)
            )
        }
        for policy in results[0].weighted_speedup_percent
    }
    print(ascii_plot(curves, title="S-curves (sorted mixes)", y_label="% over LRU"))

    # Shape: the paper's multicore headline is Glider > Hawkeye (14.7%
    # vs 13.6%); that ordering must hold here.  Absolute multicore
    # speedups do NOT reproduce at this scale: resizing the shared LLC
    # (4x) changes each synthetic workload's working-set-to-capacity
    # relationship, so several mixes favour LRU outright — recorded as a
    # partial reproduction in EXPERIMENTS.md.
    assert summary["glider"] >= summary["hawkeye"] - 1.0
