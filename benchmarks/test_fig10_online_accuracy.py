"""Figure 10: online predictor accuracy, Glider vs Hawkeye.

Paper: Glider 88.8% vs Hawkeye 84.9% on average over the full suite.
Reproduced shape: Glider's ISVM-over-PCHR predictor is at least as
accurate as Hawkeye's per-PC counters on average, with the largest wins
on context-dependent workloads.
"""

from repro.eval import format_table, online_accuracy

from .conftest import run_once


def test_fig10_online_accuracy(benchmark, artifacts, bench_config):
    def experiment():
        return online_accuracy(bench_config, cache=artifacts)

    results = run_once(benchmark, experiment)
    print()
    print(format_table([r.as_row() for r in results], "Figure 10 (reproduced)"))

    average = results[-1]
    assert average.benchmark == "average"
    # Glider's predictor matches or beats Hawkeye's on average.
    assert average.glider >= average.hawkeye - 0.02
    # Both predictors are well above chance.
    assert average.hawkeye > 0.6
    assert average.glider > 0.6
