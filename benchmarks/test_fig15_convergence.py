"""Figure 15: convergence rate of the offline models.

Paper finding: the offline ISVM reaches its final accuracy in ~1
iteration over the data; Hawkeye and Perceptron also converge fast (but
plateau lower); the LSTM needs 10-15 iterations.  This asymmetry is the
paper's core practicality argument: an online (single-pass) predictor
must converge in one iteration.
"""

from repro.eval import convergence_curves, format_table

from .conftest import SWEEP_SUBSET, run_once

EPOCHS = 8


def test_fig15_convergence(benchmark, artifacts, bench_config):
    def experiment():
        return convergence_curves(
            bench_config, benchmarks=SWEEP_SUBSET, epochs=EPOCHS, cache=artifacts
        )

    curves = run_once(benchmark, experiment)
    print()
    print(format_table(curves.rows(), "Figure 15 (reproduced)"))
    for model in curves.curves:
        print(
            f"{model}: converges in {curves.iterations_to_converge(model)} "
            f"iteration(s), final {100 * curves.curves[model][-1]:.1f}%"
        )

    from repro.eval.plots import ascii_plot

    print(ascii_plot(
        {name: {float(i + 1): v for i, v in enumerate(series)}
         for name, series in curves.curves.items()},
        title="test accuracy vs training iterations",
        y_label="accuracy",
    ))
    # Shape 1: the ISVM is within 1 point of final after iteration 1.
    assert curves.iterations_to_converge("Offline ISVM") <= 2
    # Shape 2: the LSTM needs more iterations than the ISVM.
    assert curves.iterations_to_converge("Attention LSTM") >= max(
        2, curves.iterations_to_converge("Offline ISVM")
    )
    # Shape 3: the ISVM's final accuracy beats Hawkeye's plateau.
    assert curves.curves["Offline ISVM"][-1] > curves.curves["Hawkeye"][-1]
