"""Figure 11: single-core miss-rate reduction over LRU, full suite.

Paper averages over 33 workloads: Glider 8.9%, SHiP++ 7.5%, Hawkeye
7.1%, MPPPB 6.5%.  Reproduced shape: all four learning policies reduce
misses over LRU on average, Glider is at or near the front, and MIN
upper-bounds everyone.
"""

from repro.eval import (
    arithmetic_mean,
    format_table,
    miss_rate_reduction,
    summarize_by_group,
)

from .conftest import run_once


def test_fig11_miss_rate_reduction(benchmark, artifacts, bench_config):
    def experiment():
        return miss_rate_reduction(
            bench_config, include_belady=True, cache=artifacts
        )

    results = run_once(benchmark, experiment)
    print()
    print(format_table([r.as_row() for r in results], "Figure 11 (reproduced)"))
    print(format_table(summarize_by_group(results)))

    averages = {
        policy: arithmetic_mean([r.reduction(policy) for r in results])
        for policy in results[0].miss_rates
    }
    print("suite averages (%):", {k: round(v, 2) for k, v in averages.items()})

    # Shape assertions.
    # 1. Every learning policy beats LRU on average.
    for policy, avg in averages.items():
        assert avg > 0, f"{policy} should reduce misses over LRU on average"
    # 2. Glider is competitive with the best baseline (within 20% relative).
    best_baseline = max(v for k, v in averages.items() if k != "glider")
    assert averages["glider"] >= 0.8 * best_baseline
    # 3. MIN bounds every policy on every workload, on the quantity it
    # provably maximises: *total* hits (demand + writeback).  Demand-only
    # miss rates are not bounded — MIN may trade demand hits for
    # writeback hits on write-heavy workloads.
    for r in results:
        for policy, hits in r.total_hits.items():
            assert r.belady_total_hits >= hits, (r.benchmark, policy)
