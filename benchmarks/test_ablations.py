"""Ablations of Glider's design choices (DESIGN.md section 5).

Not a paper figure: these benches quantify each mechanism the paper
motivates qualitatively — the unordered-unique history, the adaptive
training threshold, three-band confidence insertion, eviction-driven
detraining, and the sampled-set budget.
"""

from repro.cache import simulate_llc
from repro.core import GliderConfig, GliderPolicy
from repro.eval import arithmetic_mean, format_table

from .conftest import run_once

ABLATION_BENCHMARKS = ("mcf", "omnetpp", "libquantum", "astar", "gcc", "sphinx3")

VARIANTS = {
    "glider (paper config)": GliderConfig(),
    "k=1 (PC only)": GliderConfig(k=1),
    "k=3": GliderConfig(k=3),
    "k=10": GliderConfig(k=10),
    "adaptive threshold": GliderConfig(adaptive_threshold=True),
    "threshold 300": GliderConfig(threshold=300),
    "binary insertion": GliderConfig(confidence_insertion=False),
    "no detraining": GliderConfig(detrain_on_eviction=False),
    "16 sampled sets": GliderConfig(num_sampled_sets=16),
    "tracker = 2x assoc": GliderConfig(tracker_ways=32),
}


def test_glider_ablations(benchmark, artifacts, bench_config):
    hierarchy = bench_config.hierarchy()

    def experiment():
        rows = []
        for label, config in VARIANTS.items():
            rates = []
            for name in ABLATION_BENCHMARKS:
                stream = artifacts.llc_stream(name)
                stats = simulate_llc(stream, GliderPolicy(config), hierarchy)
                rates.append(stats.demand_miss_rate)
            rows.append({"variant": label, "avg miss rate": arithmetic_mean(rates)})
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(format_table(rows, "Glider ablations (lower is better)"))

    by_label = {row["variant"]: row["avg miss rate"] for row in rows}
    paper = by_label["glider (paper config)"]
    # The paper configuration must not be dominated by the crippled
    # variants; k=1 (no history) is the key ablation — context must help.
    assert paper <= by_label["k=1 (PC only)"] + 0.01
    # Detraining is load-bearing (scan resistance).
    assert paper <= by_label["no detraining"] + 0.01
