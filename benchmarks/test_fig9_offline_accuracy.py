"""Figure 9: offline predictor accuracy on the 6 analysis benchmarks.

Paper averages: attention LSTM 82.6%, offline ISVM 81.2% (within ~1.4%
of the LSTM), Perceptron and Hawkeye trailing (72.2% for Hawkeye).
Reproduced shape: LSTM >= ISVM > ordered Perceptron ~ Hawkeye, with the
ISVM within a few points of the LSTM.
"""

from repro.eval import format_table, offline_accuracy

from .conftest import OFFLINE_SUBSET, run_once


def test_fig9_offline_accuracy(benchmark, artifacts, bench_config):
    def experiment():
        return offline_accuracy(
            bench_config,
            benchmarks=OFFLINE_SUBSET,
            cache=artifacts,
            linear_epochs=6,
        )

    results = run_once(benchmark, experiment)
    print()
    print(format_table([r.as_row() for r in results], "Figure 9 (reproduced)"))

    average = results[-1]
    assert average.benchmark == "average"
    # Shape 1: context-based models beat the PC-only counter baseline.
    assert average.offline_isvm > average.hawkeye
    # Shape 2: the ISVM approaches the LSTM (within 5 points).
    assert average.offline_isvm >= average.attention_lstm - 0.05
    # Shape 3: unordered long history (ISVM) >= ordered short history.
    assert average.offline_isvm >= average.perceptron - 0.01
    # Sanity: all models are far above chance.
    assert min(
        average.hawkeye, average.perceptron, average.offline_isvm
    ) > 0.55
