"""Figure 12: single-core speedup over LRU (full timing model).

Paper averages: Glider 8.1%, MPPPB 7.6%, SHiP++ 7.1%, Hawkeye 5.9%.
Reproduced shape: all learning policies gain IPC over LRU on average and
the IPC gains track the miss reductions of Figure 11.
"""

from repro.eval import (
    format_table,
    single_core_speedup,
    summarize_speedups,
)

from .conftest import run_once

#: Timing runs are ~4x costlier than LLC replay; use half the suite,
#: keeping all three groups represented.
SPEEDUP_SUBSET = (
    "605.mcf",
    "654.roms",
    "astar",
    "gcc",
    "libquantum",
    "mcf",
    "omnetpp",
    "sphinx3",
    "bfs",
    "pr",
)


def test_fig12_single_core_speedup(benchmark, artifacts, bench_config):
    def experiment():
        return single_core_speedup(
            bench_config, benchmarks=SPEEDUP_SUBSET, cache=artifacts
        )

    results = run_once(benchmark, experiment)
    print()
    print(format_table([r.as_row() for r in results], "Figure 12 (reproduced)"))
    summary = summarize_speedups(results)
    print(format_table(summary))

    all_row = next(row for row in summary if row["group"] == "ALL")
    # Shape: every learning policy speeds up the suite on average.
    for policy in ("hawkeye", "mpppb", "ship++", "glider"):
        assert all_row[policy] > -0.5, f"{policy} should not slow the suite"
    # Glider competitive with the best baseline.
    best_baseline = max(all_row[p] for p in ("hawkeye", "mpppb", "ship++"))
    assert all_row["glider"] >= 0.7 * best_baseline
