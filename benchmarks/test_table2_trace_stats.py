"""Table 2: statistics for the benchmarks used in offline analysis.

Paper values (1B-instruction SimPoints): mcf 19.9M accesses / 650 PCs,
omnetpp 4.8M / 1498, soplex 9.4M / 2348, sphinx 3.0M / 1698, astar
1.2M / 54, lbm 5.0M / 55.  Our synthetic traces are ~100-1000x shorter;
the reproduced *shape* is the PC-population ordering (astar/lbm have
few PCs, the pointer/event workloads have many) and the
accesses-per-address contrast (streaming lbm low, sphinx high).
"""

from repro.eval import format_table
from repro.traces import trace_statistics

from .conftest import OFFLINE_SUBSET, run_once


def test_table2_trace_statistics(benchmark, artifacts, bench_config):
    def experiment():
        return [
            trace_statistics(artifacts.trace(name)) for name in OFFLINE_SUBSET
        ]

    stats = run_once(benchmark, experiment)
    print()
    print(format_table([s.as_row() for s in stats], "Table 2 (reproduced)"))

    by_name = {s.name: s for s in stats}
    # Shape: lbm has the smallest static-load population (Table 2: 55 PCs
    # vs 650-2348 for the pointer/event workloads), astar next.
    assert by_name["lbm"].num_pcs == min(s.num_pcs for s in stats)
    low_pc = sorted(stats, key=lambda s: s.num_pcs)[:2]
    assert {s.name for s in low_pc} <= {"astar", "lbm", "sphinx3", "mcf"}
    # The event-driven workload spreads accesses over more PCs than the
    # numeric kernels (omnetpp 1498 vs lbm 55 in the paper).
    assert by_name["omnetpp"].num_pcs > by_name["lbm"].num_pcs
    # Every workload has the trace length we asked for.
    for s in stats:
        assert s.num_accesses >= bench_config.trace_length
