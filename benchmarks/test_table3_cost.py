"""Table 3: model size and computational cost per sample.

Paper values: LSTM ~5x10^3 KB / ~2.4x10^3 train ops / ~0.12x10^3 test
ops; Glider 62 KB / 8 / 8; Perceptron 29 KB / 9 / 9; Hawkeye 32 KB /
1 / 1.  Sizes here are computed from the actual model objects.
"""

from repro.eval import format_table, model_cost_table

from .conftest import run_once


def test_table3_model_costs(benchmark):
    def experiment():
        return model_cost_table()

    rows = run_once(benchmark, experiment)
    print()
    print(format_table([r.as_row() for r in rows], "Table 3 (reproduced)"))

    costs = {r.model: r for r in rows}
    lstm = costs["LSTM (predictor only)"]
    glider = costs["Glider"]
    hawkeye = costs["Hawkeye"]
    perceptron = costs["Perceptron"]

    # Shape 1: the LSTM is orders of magnitude larger and slower.
    assert lstm.size_kb > 20 * glider.size_kb
    assert lstm.test_ops > 1000 * glider.test_ops
    # Shape 2: Glider's budget is ~62 KB (Section 5.4: 61.6 KB).
    assert abs(glider.size_kb - 61.6) < 2.0
    # Shape 3: hardware-model op ordering: Hawkeye < Glider ~ Perceptron.
    assert hawkeye.test_ops < glider.test_ops
    assert abs(glider.test_ops - perceptron.test_ops) <= 2
