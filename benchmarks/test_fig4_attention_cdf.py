"""Figure 4: attention-weight CDF versus the scaling factor f.

Paper finding (omnetpp): raising f from 1 to 5 makes the attention
distribution sharply sparse while accuracy stays within ~1 point
(85.2% -> 85.0%).  Reproduced shape: the mean maximum attention weight
grows with f while test accuracy stays within a small band.
"""

import numpy as np

from repro.eval import attention_cdf, format_table

from .conftest import run_once

SCALES = (1.0, 2.0, 3.0, 5.0)


def test_fig4_attention_cdf(benchmark, artifacts, bench_config):
    def experiment():
        return attention_cdf(
            bench_config, benchmark="omnetpp", scales=SCALES, cache=artifacts
        )

    results = run_once(benchmark, experiment)
    print()
    print(format_table([r.as_row() for r in results], "Figure 4 (reproduced)"))

    accuracies = [r.accuracy for r in results]
    sharpness = [r.max_weight_mean for r in results]
    # Shape 1: sparsity grows with the scaling factor.
    assert sharpness[-1] > sharpness[0]
    # Shape 2: accuracy stays within a narrow band across scales.
    assert max(accuracies) - min(accuracies) < 0.08
    # Shape 3: at the largest scale a dominant source exists on average.
    assert sharpness[-1] > 0.2
