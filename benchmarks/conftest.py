"""Shared configuration for the paper-reproduction benchmark harness.

Every file in this directory regenerates one table or figure from the
paper (see DESIGN.md's per-experiment index).  Benchmarks run each
experiment exactly once through ``benchmark.pedantic`` — the interesting
output is the printed paper-style table plus the *shape* assertions
(who wins, where curves saturate), not the wall-clock time.

Run:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.eval import ArtifactCache, ExperimentConfig

#: Scale used by the benchmark harness.  Larger than the test suite's
#: (richer learning signal), smaller than the paper's 1B-instruction
#: SimPoints (laptop runtime).
BENCH_CONFIG = ExperimentConfig(
    trace_length=50_000,
    lstm_embedding=32,
    lstm_hidden=32,
    lstm_history=20,
    lstm_epochs=4,
)

#: Subset used by the LSTM-heavy experiments (Figures 4-6, 9, 14, 15);
#: the paper's offline section also uses a 6-benchmark subset (Table 2).
OFFLINE_SUBSET = ("mcf", "omnetpp", "soplex", "sphinx3", "astar", "lbm")

#: Smaller subset for the most expensive sweeps.
SWEEP_SUBSET = ("omnetpp", "mcf")


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def artifacts() -> ArtifactCache:
    """Session-wide cache: traces/streams/labels are built once."""
    return ArtifactCache(BENCH_CONFIG)


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
