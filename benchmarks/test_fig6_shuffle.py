"""Figure 6: accuracy on original versus randomly shuffled sequences.

Paper finding (Observation 3): shuffling the source history costs only a
marginal amount of accuracy — order barely matters, presence does.
Reproduced shape: the average degradation from shuffling is small
relative to the model's margin over chance.
"""

from repro.eval import format_table, shuffle_experiment

from .conftest import OFFLINE_SUBSET, run_once


def test_fig6_shuffled_history(benchmark, artifacts, bench_config):
    def experiment():
        return shuffle_experiment(
            bench_config, benchmarks=OFFLINE_SUBSET[:4], cache=artifacts
        )

    results = run_once(benchmark, experiment)
    print()
    print(format_table([r.as_row() for r in results], "Figure 6 (reproduced)"))

    average = results[-1]
    assert average.benchmark == "average"
    # Shape: shuffling costs far less than the model's margin over
    # chance.  The paper reports a 1-3 point gap with a 128-dim LSTM
    # trained to convergence; our 32-dim, few-epoch model leans more on
    # recency, so the reproduced bound is looser (recorded in
    # EXPERIMENTS.md) — but the shuffled model must stay well above
    # chance, i.e. most of what it learned is order-free.
    assert average.degradation < 0.20
    assert average.shuffled_accuracy > 0.55
